// SamplerCursor — one-step-at-a-time sampling.
//
// Batch samplers (sampling/) materialize their whole SampleRecord before
// any estimator runs, so memory grows linearly with the budget B. A cursor
// instead exposes the same process as a pull iterator: each next() call
// performs exactly one budgeted query of the crawled graph and reports
// what that query observed (an edge, a vertex, or nothing — e.g. a lazy
// stay or a failed jump). This mirrors how the paper's crawlers actually
// operate (Section 2: samples arrive one API query at a time) and is the
// substrate for online estimator sinks (stream/sinks.hpp) and
// checkpoint/resume (stream/checkpoint.hpp).
//
// Contract: for every refactored sampler, draining a cursor reproduces the
// batch run() byte-for-byte — identical RNG draw sequence, identical edge
// and vertex sequences, identical starts and cost. The batch run() methods
// are in fact thin loops over these cursors (see sampling/*.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "core/types.hpp"
#include "random/rng.hpp"
#include "sampling/walk.hpp"
#include "stream/block.hpp"

namespace frontier {

/// What one budgeted step observed. A step may record an edge (walk
/// transition), a vertex (visit/jump landing), both (RWJ walk steps,
/// accepted MH moves), or neither (burn-in, lazy stays).
struct StreamEvent {
  Edge edge{};
  VertexId vertex = kInvalidVertex;
  bool has_edge = false;
  bool has_vertex = false;

  void clear() noexcept {
    has_edge = false;
    has_vertex = false;
  }
};

/// Identifies the concrete cursor type inside a checkpoint header.
enum class CursorKind : std::uint32_t {
  kFrontier = 1,
  kSingleRw = 2,
  kMultipleRw = 3,
  kRandomWalkWithJumps = 4,
  kMetropolis = 5,
};

/// Abstract one-step sampler. Concrete cursors live in
/// stream/sampler_cursors.hpp; each owns its RNG by value so that
/// (cursor state, sink states) is a complete, serializable description of
/// an in-flight crawl.
class SamplerCursor {
 public:
  virtual ~SamplerCursor() = default;

  /// Advances one budgeted step. Returns false once the budget is
  /// exhausted (ev is left cleared); otherwise fills ev with whatever the
  /// step observed (possibly nothing).
  virtual bool next(StreamEvent& ev) = 0;

  /// Batched stepping fast path: clears `block`, advances up to
  /// min(max_steps, block.capacity()) budgeted steps, appending one row
  /// per step, and returns the number of steps taken (0 iff exhausted or
  /// max_steps == 0). The cursor state, RNG stream, emitted events and
  /// cost after next_batch are byte-identical to the same number of
  /// next() calls — batching amortizes dispatch, it never reorders draws
  /// (tests/test_stream_batch.cpp asserts this for every cursor and
  /// batch size). The base implementation loops next(); the concrete
  /// cursors override it with branch-hoisted tight loops.
  virtual std::size_t next_batch(
      StreamEventBlock& block,
      std::size_t max_steps = std::numeric_limits<std::size_t>::max());

  /// True once next() has returned (or would return) false.
  [[nodiscard]] virtual bool done() const noexcept = 0;

  /// Budget consumed so far; after exhaustion this equals the batch
  /// run()'s SampleRecord::cost exactly.
  [[nodiscard]] virtual double cost() const noexcept = 0;

  /// Initial vertex of each walker, in the order they were drawn.
  [[nodiscard]] virtual const std::vector<VertexId>& starts() const noexcept = 0;

  /// The cursor's RNG. Batch run() wrappers copy this back into the
  /// caller's generator after draining so the external stream position is
  /// identical to the pre-refactor samplers.
  [[nodiscard]] virtual const Rng& rng() const noexcept = 0;

  [[nodiscard]] virtual CursorKind kind() const noexcept = 0;

  /// Number of concurrently maintained walkers: the live frontier size for
  /// FS, the number of not-yet-exhausted walkers for MultipleRW, 1 for the
  /// single-walker cursors. Telemetry-only — reading it never advances the
  /// crawl or touches the RNG.
  [[nodiscard]] virtual std::size_t active_walkers() const noexcept {
    return 1;
  }

  /// The graph being crawled. Checkpoints fingerprint it (|V| and volume)
  /// so a resume against a different graph fails loudly.
  [[nodiscard]] virtual const Graph& graph() const noexcept = 0;

  /// Serializes / restores the dynamic state (positions, counters, RNG).
  /// The static configuration (graph, Config) is NOT stored: the caller
  /// reconstructs the cursor from the same config and then load_state()s
  /// into it. A configuration fingerprint is checked on load and a
  /// mismatch throws IoError.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void load_state(std::istream& is) = 0;
};

/// Runs a cursor to exhaustion through arena.block and assembles the
/// batch-equivalent SampleRecord in arena.record (cleared first, capacity
/// kept). `reserve_edges`/`reserve_vertices` pre-size the record's
/// vectors up front so the drain never regrows them. Returns arena.record.
SampleRecord& drain_cursor_into(SamplerCursor& cursor, SampleArena& arena,
                                std::uint64_t reserve_edges = 0,
                                std::uint64_t reserve_vertices = 0);

/// Convenience wrapper over drain_cursor_into with a throwaway arena.
[[nodiscard]] SampleRecord drain_cursor(SamplerCursor& cursor,
                                        std::uint64_t reserve_edges = 0,
                                        std::uint64_t reserve_vertices = 0);

}  // namespace frontier

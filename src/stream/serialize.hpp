// Tiny binary (de)serialization helpers shared by the streaming
// checkpoints (stream/checkpoint.*, cursor and sink save/load_state).
//
// Same conventions as the graph snapshot writer in graph/io.cpp: raw
// little-endian PODs, length-prefixed vectors/strings, IoError on short
// reads. Kept header-only so cursors and sinks can serialize themselves
// without a dependency cycle.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "graph/io.hpp"

namespace frontier::streamio {

/// Sanity cap on length-prefixed containers. Genuine checkpoint vectors
/// are bounded by walker counts and degree buckets (≪ 2^31); anything
/// larger is a corrupt length field and must not turn into a giant
/// allocation attempt.
inline constexpr std::uint64_t kMaxElements = 1ULL << 31;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!os) throw IoError("stream checkpoint: write failure");
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw IoError("stream checkpoint: truncated stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!os) throw IoError("stream checkpoint: write failure");
  }
}

template <typename T>
[[nodiscard]] std::vector<T> read_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(is);
  if (n > kMaxElements) {
    throw IoError("stream checkpoint: corrupt length field");
  }
  std::vector<T> v(n);
  if (n != 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!is) throw IoError("stream checkpoint: truncated stream");
  }
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (!os) throw IoError("stream checkpoint: write failure");
}

[[nodiscard]] inline std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  if (n > kMaxElements) {
    throw IoError("stream checkpoint: corrupt length field");
  }
  std::string s(n, '\0');
  if (n != 0) {
    is.read(s.data(), static_cast<std::streamsize>(n));
    if (!is) throw IoError("stream checkpoint: truncated stream");
  }
  return s;
}

/// Reads a POD written by write_pod and throws IoError unless it equals
/// `expected` — used by cursors to verify that a checkpoint was taken with
/// the same sampler configuration it is being restored into.
template <typename T>
void expect_pod(std::istream& is, const T& expected, const char* what) {
  const T got = read_pod<T>(is);
  if (!(got == expected)) {
    throw IoError(std::string("stream checkpoint: configuration mismatch: ") +
                  what);
  }
}

}  // namespace frontier::streamio

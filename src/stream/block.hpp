// StreamEventBlock — the structure-of-arrays unit of the batched hot path.
//
// One virtual SamplerCursor::next(StreamEvent&) call per sampled edge is
// the dominant per-step overhead once the walk arithmetic itself is a few
// nanoseconds. A block amortizes that dispatch: the cursor advances up to
// capacity() steps in one next_batch() call, writing each step's
// observation into parallel columns (edge endpoints u/v, the symmetric
// degree of the edge target, the observed vertex, and a per-row flag
// byte). Sinks then ingest whole columns (EstimatorSink::ingest_block)
// and drain_cursor bulk-appends them into a SampleRecord.
//
// Blocks are caller-owned and reusable: StreamEngine, drain_cursor and
// the per-worker replication arenas each keep one block alive across
// refills, so the steady state of the pipeline allocates nothing. The
// columns are allocated once at construction and rows are written by
// index — push_* never reallocates.
//
// The degree column carries deg(v) *in the cursor's graph*. Every
// reweighting sink needs that value anyway (the 1/deg importance weight
// of eq. 7), and the cursor usually has it at hand (FS updates its
// Fenwick tree with it), so the block computes it once for all sinks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace frontier {

/// Process-wide default block capacity: the FS_BLOCK environment knob
/// (strictly parsed, like the FS_* knobs in experiments/config.hpp),
/// clamped to >= 1; 4096 when unset. Read once per process. The batched
/// pipeline is bit-identical for every capacity — the knob exists so CI
/// can prove that (K=1 vs K=4096 result fingerprints must match), not to
/// tune results.
[[nodiscard]] std::size_t default_block_capacity();

class StreamEventBlock {
 public:
  /// Row flag bits, mirroring StreamEvent::has_edge / has_vertex. A row
  /// with no bit set is an empty step (burn-in, lazy stay, walker start
  /// jump): budget was spent but nothing was observed.
  static constexpr std::uint8_t kHasEdge = 1;
  static constexpr std::uint8_t kHasVertex = 2;

  explicit StreamEventBlock(std::size_t capacity = default_block_capacity());

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t room() const noexcept { return cap_ - size_; }
  void clear() noexcept { size_ = 0; }

  // Writer API (cursors). Precondition: size() < capacity(). Rows not
  // carrying an edge (resp. vertex) leave those columns stale; readers
  // must gate on flags().
  void push_empty() noexcept { flags_[size_++] = 0; }
  void push_edge(VertexId u, VertexId v, std::uint32_t deg_v) noexcept {
    u_[size_] = u;
    v_[size_] = v;
    deg_v_[size_] = deg_v;
    flags_[size_++] = kHasEdge;
  }
  void push_vertex(VertexId x) noexcept {
    vertex_[size_] = x;
    flags_[size_++] = kHasVertex;
  }
  void push_edge_vertex(VertexId u, VertexId v, std::uint32_t deg_v,
                        VertexId x) noexcept {
    u_[size_] = u;
    v_[size_] = v;
    deg_v_[size_] = deg_v;
    vertex_[size_] = x;
    flags_[size_++] = kHasEdge | kHasVertex;
  }

  // Reader API (sinks, drain). Spans cover the size() filled rows.
  [[nodiscard]] std::span<const VertexId> u() const noexcept {
    return {u_.data(), size_};
  }
  [[nodiscard]] std::span<const VertexId> v() const noexcept {
    return {v_.data(), size_};
  }
  /// Symmetric degree of v() in the cursor's graph, valid on edge rows.
  [[nodiscard]] std::span<const std::uint32_t> deg_v() const noexcept {
    return {deg_v_.data(), size_};
  }
  [[nodiscard]] std::span<const VertexId> vertex() const noexcept {
    return {vertex_.data(), size_};
  }
  [[nodiscard]] std::span<const std::uint8_t> flags() const noexcept {
    return {flags_.data(), size_};
  }

 private:
  std::vector<VertexId> u_;
  std::vector<VertexId> v_;
  std::vector<std::uint32_t> deg_v_;
  std::vector<VertexId> vertex_;
  std::vector<std::uint8_t> flags_;
  std::size_t size_ = 0;
  std::size_t cap_;
};

}  // namespace frontier

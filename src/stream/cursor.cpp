#include "stream/cursor.hpp"

#include <algorithm>

namespace frontier {

std::size_t SamplerCursor::next_batch(StreamEventBlock& block,
                                      std::size_t max_steps) {
  block.clear();
  const std::size_t want = std::min(max_steps, block.capacity());
  StreamEvent ev;
  std::size_t taken = 0;
  while (taken < want && next(ev)) {
    if (ev.has_edge && ev.has_vertex) {
      block.push_edge_vertex(ev.edge.u, ev.edge.v,
                             graph().degree(ev.edge.v), ev.vertex);
    } else if (ev.has_edge) {
      block.push_edge(ev.edge.u, ev.edge.v, graph().degree(ev.edge.v));
    } else if (ev.has_vertex) {
      block.push_vertex(ev.vertex);
    } else {
      block.push_empty();
    }
    ++taken;
  }
  return taken;
}

SampleRecord& drain_cursor_into(SamplerCursor& cursor, SampleArena& arena,
                                std::uint64_t reserve_edges,
                                std::uint64_t reserve_vertices) {
  arena.reset();
  SampleRecord& rec = arena.record;
  rec.edges.reserve(reserve_edges);
  rec.vertices.reserve(reserve_vertices);
  StreamEventBlock& block = arena.block;
  while (cursor.next_batch(block) > 0) {
    const std::size_t n = block.size();
    const std::uint8_t* flags = block.flags().data();
    const VertexId* u = block.u().data();
    const VertexId* v = block.v().data();
    const VertexId* vertex = block.vertex().data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t f = flags[i];
      if (f & StreamEventBlock::kHasEdge) {
        rec.edges.push_back(Edge{u[i], v[i]});
      }
      if (f & StreamEventBlock::kHasVertex) {
        rec.vertices.push_back(vertex[i]);
      }
    }
  }
  rec.starts = cursor.starts();
  rec.cost = cursor.cost();
  return rec;
}

SampleRecord drain_cursor(SamplerCursor& cursor, std::uint64_t reserve_edges,
                          std::uint64_t reserve_vertices) {
  SampleArena arena;
  return std::move(
      drain_cursor_into(cursor, arena, reserve_edges, reserve_vertices));
}

}  // namespace frontier

#include "stream/cursor.hpp"

namespace frontier {

SampleRecord drain_cursor(SamplerCursor& cursor, std::uint64_t reserve_edges,
                          std::uint64_t reserve_vertices) {
  SampleRecord rec;
  rec.edges.reserve(reserve_edges);
  rec.vertices.reserve(reserve_vertices);
  StreamEvent ev;
  while (cursor.next(ev)) {
    if (ev.has_edge) rec.edges.push_back(ev.edge);
    if (ev.has_vertex) rec.vertices.push_back(ev.vertex);
  }
  rec.starts = cursor.starts();
  rec.cost = cursor.cost();
  return rec;
}

}  // namespace frontier

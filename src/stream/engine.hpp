// StreamEngine — wires a SamplerCursor to a set of EstimatorSinks.
//
// The engine pulls events from the cursor and pushes each into every sink,
// in bounded chunks so long crawls stay interruptible (periodic
// checkpointing, progress reporting, cooperative cancellation). Memory is
// O(cursor state + sink buckets), independent of the budget — the whole
// point of the streaming subsystem.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "stream/checkpoint.hpp"
#include "stream/cursor.hpp"
#include "stream/sinks.hpp"

namespace frontier {

class StreamEngine {
 public:
  StreamEngine(std::unique_ptr<SamplerCursor> cursor, SinkSet sinks);

  /// Pumps at most `max_events` cursor steps through the sinks. Returns
  /// the number of steps actually taken (< max_events iff the cursor ran
  /// out of budget).
  std::uint64_t pump(std::uint64_t max_events);

  /// Pumps until the cursor is exhausted; returns steps taken.
  std::uint64_t run_to_completion();

  [[nodiscard]] bool finished() const noexcept { return cursor_->done(); }
  /// Total cursor steps processed (resumes restore this from checkpoints).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  [[nodiscard]] const SamplerCursor& cursor() const noexcept {
    return *cursor_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<EstimatorSink>> sinks()
      const noexcept {
    return sinks_;
  }

  void save_checkpoint(std::ostream& os) const;
  void load_checkpoint(std::istream& is);
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

 private:
  std::unique_ptr<SamplerCursor> cursor_;
  SinkSet sinks_;
  std::uint64_t events_ = 0;
};

}  // namespace frontier

// StreamEngine — wires a SamplerCursor to a set of EstimatorSinks.
//
// The engine pulls events from the cursor and pushes them into the sinks
// block-wise: the cursor fills the engine's reusable StreamEventBlock via
// next_batch() and each sink ingests whole columns (ingest_block), so the
// per-step cost is amortized over the block instead of paying virtual
// dispatch per edge. pump(max_events) still honors exact event counts
// (the last refill is truncated), so periodic checkpointing, progress
// reporting and cooperative cancellation work at any granularity —
// checkpoints taken mid-block are byte-identical to the event-by-event
// engine. Memory is O(cursor state + sink buckets + one block),
// independent of the budget — the whole point of the streaming subsystem.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "stream/checkpoint.hpp"
#include "stream/cursor.hpp"
#include "stream/sinks.hpp"

namespace frontier {

class CrawlInstrumentation;

class StreamEngine {
 public:
  /// `block_capacity` sets the refill granularity of the internal event
  /// block (default: default_block_capacity(), i.e. the FS_BLOCK knob).
  /// Results are bit-identical for every capacity.
  StreamEngine(std::unique_ptr<SamplerCursor> cursor, SinkSet sinks,
               std::size_t block_capacity = default_block_capacity());

  /// Pumps at most `max_events` cursor steps through the sinks. Returns
  /// the number of steps actually taken (< max_events iff the cursor ran
  /// out of budget).
  std::uint64_t pump(std::uint64_t max_events);

  /// Pumps until the cursor is exhausted; returns steps taken.
  std::uint64_t run_to_completion();

  [[nodiscard]] bool finished() const noexcept { return cursor_->done(); }
  /// Total cursor steps processed (resumes restore this from checkpoints).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  [[nodiscard]] const SamplerCursor& cursor() const noexcept {
    return *cursor_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<EstimatorSink>> sinks()
      const noexcept {
    return sinks_;
  }

  void save_checkpoint(std::ostream& os) const;
  void load_checkpoint(std::istream& is);
  void save_checkpoint_file(const std::string& path) const;
  void load_checkpoint_file(const std::string& path);

  /// Attaches (or detaches, with nullptr) telemetry. The instrumentation
  /// is an outside observer: with it attached, pump() issues the same
  /// next_batch / ingest_block calls in the same order with the same
  /// arguments, so the crawl is bit-identical to an uninstrumented one —
  /// only wall-clock reads and metric stores are added around the calls.
  /// The caller keeps `instr` alive for the engine's lifetime.
  void set_instrumentation(CrawlInstrumentation* instr) noexcept {
    instr_ = instr;
  }
  [[nodiscard]] CrawlInstrumentation* instrumentation() const noexcept {
    return instr_;
  }

 private:
  std::uint64_t pump_instrumented(std::uint64_t max_events);

  std::unique_ptr<SamplerCursor> cursor_;
  SinkSet sinks_;
  StreamEventBlock block_;
  std::uint64_t events_ = 0;
  CrawlInstrumentation* instr_ = nullptr;
};

}  // namespace frontier

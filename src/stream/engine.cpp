#include "stream/engine.hpp"

#include <limits>
#include <stdexcept>

namespace frontier {

StreamEngine::StreamEngine(std::unique_ptr<SamplerCursor> cursor,
                           SinkSet sinks, std::size_t block_capacity)
    : cursor_(std::move(cursor)),
      sinks_(std::move(sinks)),
      block_(block_capacity) {
  if (!cursor_) {
    throw std::invalid_argument("StreamEngine: cursor required");
  }
}

std::uint64_t StreamEngine::pump(std::uint64_t max_events) {
  std::uint64_t taken = 0;
  while (taken < max_events) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_events - taken, block_.capacity()));
    const std::size_t got = cursor_->next_batch(block_, want);
    if (got == 0) break;
    for (const auto& sink : sinks_) sink->ingest_block(block_);
    taken += got;
  }
  events_ += taken;
  return taken;
}

std::uint64_t StreamEngine::run_to_completion() {
  std::uint64_t total = 0;
  while (!finished()) {
    total += pump(std::numeric_limits<std::uint64_t>::max());
  }
  return total;
}

void StreamEngine::save_checkpoint(std::ostream& os) const {
  StreamCheckpoint::save(os, *cursor_, sinks_, events_);
}

void StreamEngine::load_checkpoint(std::istream& is) {
  events_ = StreamCheckpoint::load(is, *cursor_, sinks_);
}

void StreamEngine::save_checkpoint_file(const std::string& path) const {
  StreamCheckpoint::save_file(path, *cursor_, sinks_, events_);
}

void StreamEngine::load_checkpoint_file(const std::string& path) {
  events_ = StreamCheckpoint::load_file(path, *cursor_, sinks_);
}

}  // namespace frontier

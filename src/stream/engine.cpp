#include "stream/engine.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/crawl_metrics.hpp"

namespace frontier {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_between(Clock::time_point a,
                                       Clock::time_point b) noexcept {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d < 0 ? 0 : static_cast<std::uint64_t>(d);
}

}  // namespace

StreamEngine::StreamEngine(std::unique_ptr<SamplerCursor> cursor,
                           SinkSet sinks, std::size_t block_capacity)
    : cursor_(std::move(cursor)),
      sinks_(std::move(sinks)),
      block_(block_capacity) {
  if (!cursor_) {
    throw std::invalid_argument("StreamEngine: cursor required");
  }
}

std::uint64_t StreamEngine::pump(std::uint64_t max_events) {
  if (instr_ != nullptr) return pump_instrumented(max_events);
  std::uint64_t taken = 0;
  while (taken < max_events) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_events - taken, block_.capacity()));
    const std::size_t got = cursor_->next_batch(block_, want);
    if (got == 0) break;
    for (const auto& sink : sinks_) sink->ingest_block(block_);
    taken += got;
  }
  events_ += taken;
  return taken;
}

std::uint64_t StreamEngine::run_to_completion() {
  std::uint64_t total = 0;
  while (!finished()) {
    total += pump(std::numeric_limits<std::uint64_t>::max());
  }
  return total;
}

// Same calls, same order, same arguments as pump() — plus clock reads and
// metric stores between them. Telemetry observes; it never participates.
std::uint64_t StreamEngine::pump_instrumented(std::uint64_t max_events) {
  const auto pump_start = Clock::now();
  std::uint64_t taken = 0;
  while (taken < max_events) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_events - taken, block_.capacity()));
    const auto batch_start = Clock::now();
    const std::size_t got = cursor_->next_batch(block_, want);
    const auto batch_end = Clock::now();
    if (got == 0) break;
    instr_->on_block(block_, *cursor_, ns_between(batch_start, batch_end));
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      const auto ingest_start = Clock::now();
      sinks_[i]->ingest_block(block_);
      instr_->on_sink_ingest(i, ns_between(ingest_start, Clock::now()));
    }
    taken += got;
  }
  events_ += taken;
  instr_->on_pump(ns_between(pump_start, Clock::now()));
  return taken;
}

void StreamEngine::save_checkpoint(std::ostream& os) const {
  if (instr_ == nullptr) {
    StreamCheckpoint::save(os, *cursor_, sinks_, events_);
    return;
  }
  const auto begin = os.tellp();
  const auto start = Clock::now();
  StreamCheckpoint::save(os, *cursor_, sinks_, events_);
  const auto end = os.tellp();
  const std::uint64_t bytes =
      (begin < 0 || end < begin) ? 0
                                 : static_cast<std::uint64_t>(end - begin);
  instr_->on_checkpoint_save(ns_between(start, Clock::now()), bytes);
}

void StreamEngine::load_checkpoint(std::istream& is) {
  if (instr_ == nullptr) {
    events_ = StreamCheckpoint::load(is, *cursor_, sinks_);
    return;
  }
  const auto begin = is.tellg();
  const auto start = Clock::now();
  events_ = StreamCheckpoint::load(is, *cursor_, sinks_);
  const auto end = is.tellg();
  const std::uint64_t bytes =
      (begin < 0 || end < begin) ? 0
                                 : static_cast<std::uint64_t>(end - begin);
  instr_->on_checkpoint_load(ns_between(start, Clock::now()), bytes);
}

void StreamEngine::save_checkpoint_file(const std::string& path) const {
  if (instr_ == nullptr) {
    StreamCheckpoint::save_file(path, *cursor_, sinks_, events_);
    return;
  }
  const auto start = Clock::now();
  StreamCheckpoint::save_file(path, *cursor_, sinks_, events_);
  const std::uint64_t ns = ns_between(start, Clock::now());
  std::uint64_t bytes = 0;
  if (std::ifstream probe{path, std::ios::binary | std::ios::ate}) {
    const auto size = probe.tellg();
    if (size > 0) bytes = static_cast<std::uint64_t>(size);
  }
  instr_->on_checkpoint_save(ns, bytes);
}

void StreamEngine::load_checkpoint_file(const std::string& path) {
  if (instr_ == nullptr) {
    events_ = StreamCheckpoint::load_file(path, *cursor_, sinks_);
    return;
  }
  std::uint64_t bytes = 0;
  if (std::ifstream probe{path, std::ios::binary | std::ios::ate}) {
    const auto size = probe.tellg();
    if (size > 0) bytes = static_cast<std::uint64_t>(size);
  }
  const auto start = Clock::now();
  events_ = StreamCheckpoint::load_file(path, *cursor_, sinks_);
  instr_->on_checkpoint_load(ns_between(start, Clock::now()), bytes);
}

}  // namespace frontier

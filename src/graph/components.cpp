#include "graph/components.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"

namespace frontier {

std::uint32_t ComponentInfo::largest() const {
  if (size.empty()) throw std::logic_error("ComponentInfo: no components");
  std::uint32_t best = 0;
  for (std::uint32_t c = 1; c < size.size(); ++c) {
    if (size[c] > size[best]) best = c;
  }
  return best;
}

ComponentInfo connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  ComponentInfo info;
  info.component_of.assign(n, ~std::uint32_t{0});

  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (info.component_of[start] != ~std::uint32_t{0}) continue;
    const auto cid = static_cast<std::uint32_t>(info.size.size());
    info.size.push_back(0);
    info.volume.push_back(0);
    queue.clear();
    queue.push_back(start);
    info.component_of[start] = cid;
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      ++info.size[cid];
      info.volume[cid] += g.degree(v);
      for (VertexId w : g.neighbors(v)) {
        if (info.component_of[w] == ~std::uint32_t{0}) {
          info.component_of[w] = cid;
          queue.push_back(w);
        }
      }
    }
  }
  return info;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return false;
  return connected_components(g).num_components() == 1;
}

bool is_bipartite(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::int8_t> color(n, -1);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    queue.clear();
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      for (VertexId w : g.neighbors(v)) {
        if (color[w] == -1) {
          color[w] = static_cast<std::int8_t>(1 - color[v]);
          queue.push_back(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

Subgraph induced_subgraph(const Graph& g, std::span<const VertexId> vertices) {
  std::vector<VertexId> new_id(g.num_vertices(), kInvalidVertex);
  Subgraph out;
  out.original_id.assign(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= g.num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex id out of range");
    }
    if (new_id[v] != kInvalidVertex) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex id");
    }
    new_id[v] = static_cast<VertexId>(i);
  }

  GraphBuilder builder(vertices.size());
  for (VertexId v : vertices) {
    const auto nbrs = g.neighbors(v);
    const auto dirs = g.directions(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId w = nbrs[k];
      if (new_id[w] == kInvalidVertex) continue;
      const EdgeDir d = dirs[k];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        builder.add_edge(new_id[v], new_id[w]);
      }
    }
  }
  out.graph = builder.build();
  return out;
}

Subgraph largest_connected_component(const Graph& g) {
  const ComponentInfo info = connected_components(g);
  const std::uint32_t lcc = info.largest();
  std::vector<VertexId> vertices;
  vertices.reserve(info.size[lcc]);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (info.component_of[v] == lcc) vertices.push_back(v);
  }
  return induced_subgraph(g, vertices);
}

}  // namespace frontier

// Mutable edge-list accumulator that produces an immutable Graph.
//
// The builder accepts directed edges (duplicates allowed), then build():
//   1. drops self-loops (the paper's graphs are simple),
//   2. deduplicates parallel directed edges,
//   3. symmetrizes into G while recording per-entry EdgeDir flags,
//   4. computes original in/out degrees.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "graph/graph.hpp"

namespace frontier {

class GraphBuilder {
 public:
  /// `num_vertices` fixes |V|; vertex ids must be < num_vertices.
  explicit GraphBuilder(std::size_t num_vertices);

  /// Adds the directed edge (u, v). Throws std::out_of_range on bad ids.
  void add_edge(VertexId u, VertexId v);

  /// Adds both (u, v) and (v, u) — convenience for undirected graphs.
  void add_undirected_edge(VertexId u, VertexId v);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_added_edges() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable Graph. The builder may be reused afterwards
  /// (its edge list is preserved). `threads` bounds the internal sort
  /// parallelism and resolves like resolve_threads (0 = hardware
  /// concurrency); the result is identical for every thread count.
  [[nodiscard]] Graph build(std::size_t threads = 0) const;

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

}  // namespace frontier

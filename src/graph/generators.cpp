#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"
#include "random/alias_table.hpp"

namespace frontier {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

Graph barabasi_albert(std::size_t n, std::size_t links_per_vertex, Rng& rng) {
  require(links_per_vertex >= 1, "barabasi_albert: links_per_vertex >= 1");
  require(n > links_per_vertex, "barabasi_albert: n must exceed links");

  GraphBuilder builder(n);
  // `targets` holds one entry per edge endpoint; sampling an index uniformly
  // selects a vertex with probability proportional to its degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * n * links_per_vertex);

  // Seed clique over the first links_per_vertex+1 vertices.
  const std::size_t seed = links_per_vertex + 1;
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) {
      builder.add_undirected_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  chosen.reserve(links_per_vertex);
  for (VertexId v = static_cast<VertexId>(seed); v < n; ++v) {
    chosen.clear();
    while (chosen.size() < links_per_vertex) {
      const VertexId t =
          endpoints[uniform_index(rng, endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      builder.add_undirected_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.build();
}

Graph directed_preferential(std::size_t n, std::size_t links_per_vertex,
                            double reciprocity, Rng& rng) {
  require(links_per_vertex >= 1, "directed_preferential: links >= 1");
  require(n > links_per_vertex, "directed_preferential: n must exceed links");
  require(reciprocity >= 0.0 && reciprocity <= 1.0,
          "directed_preferential: reciprocity in [0,1]");

  GraphBuilder builder(n);
  std::vector<VertexId> endpoints;  // degree-proportional target pool
  endpoints.reserve(2 * n * links_per_vertex);

  const std::size_t seed = links_per_vertex + 1;
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) {
      builder.add_edge(u, v);
      builder.add_edge(v, u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> chosen;
  for (VertexId v = static_cast<VertexId>(seed); v < n; ++v) {
    chosen.clear();
    while (chosen.size() < links_per_vertex) {
      const VertexId t = endpoints[uniform_index(rng, endpoints.size())];
      if (t != v &&
          std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      builder.add_edge(v, t);  // v subscribes to t
      if (bernoulli(rng, reciprocity)) builder.add_edge(t, v);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.build();
}

Graph community_preferential(std::size_t n, std::size_t links_per_vertex,
                             double reciprocity, std::size_t communities,
                             std::size_t bridges_per_community, Rng& rng) {
  require(communities >= 1, "community_preferential: communities >= 1");
  require(n >= communities * (links_per_vertex + 2),
          "community_preferential: n too small for community count");

  // Zipf-skewed community sizes (rank^-0.8), floored so each block can host
  // its seed clique.
  const std::size_t min_size = links_per_vertex + 2;
  std::vector<std::size_t> sizes(communities);
  double norm = 0.0;
  for (std::size_t k = 0; k < communities; ++k) {
    norm += std::pow(static_cast<double>(k + 1), -0.8);
  }
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < communities; ++k) {
    const double share =
        std::pow(static_cast<double>(k + 1), -0.8) / norm;
    sizes[k] = std::max(min_size,
                        static_cast<std::size_t>(share *
                                                 static_cast<double>(n)));
    assigned += sizes[k];
  }
  // Absorb rounding drift into the largest community.
  if (assigned < n) {
    sizes[0] += n - assigned;
  } else if (assigned > n) {
    const std::size_t excess = assigned - n;
    sizes[0] -= std::min(sizes[0] - min_size, excess);
  }

  std::vector<Graph> blocks;
  blocks.reserve(communities);
  std::vector<std::size_t> base(communities, 0);
  std::size_t offset = 0;
  for (std::size_t k = 0; k < communities; ++k) {
    base[k] = offset;
    blocks.push_back(
        directed_preferential(sizes[k], links_per_vertex, reciprocity, rng));
    offset += blocks.back().num_vertices();
  }
  Graph merged = disjoint_union(blocks);

  // Re-add the union into a builder so bridges can be appended.
  GraphBuilder builder(merged.num_vertices());
  for (VertexId u = 0; u < merged.num_vertices(); ++u) {
    const auto nbrs = merged.neighbors(u);
    const auto dirs = merged.directions(u);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const EdgeDir d = dirs[j];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        builder.add_edge(u, nbrs[j]);
      }
    }
  }
  // Chain bridge guarantees connectivity; extra random bridges control how
  // loosely the communities couple.
  const auto random_in = [&](std::size_t k) {
    return static_cast<VertexId>(base[k] +
                                 uniform_index(rng, blocks[k].num_vertices()));
  };
  for (std::size_t k = 0; k + 1 < communities; ++k) {
    builder.add_undirected_edge(random_in(k), random_in(k + 1));
  }
  for (std::size_t k = 0; k < communities && communities > 1; ++k) {
    for (std::size_t b = 1; b < bridges_per_community; ++b) {
      std::size_t other;
      do {
        other = uniform_index(rng, communities);
      } while (other == k);
      builder.add_undirected_edge(random_in(k), random_in(other));
    }
  }
  return builder.build();
}

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  require(p >= 0.0 && p <= 1.0, "erdos_renyi_gnp: p in [0,1]");
  GraphBuilder builder(n);
  if (p > 0.0 && n >= 2) {
    // Batagelj–Brandes geometric skipping over the strictly-lower triangle.
    std::uint64_t v = 1;
    std::int64_t w = -1;
    const double logq = std::log1p(-p);
    while (v < n) {
      if (p >= 1.0) {
        ++w;
      } else {
        const double u = 1.0 - uniform01(rng);
        w += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / logq));
      }
      while (w >= static_cast<std::int64_t>(v) && v < n) {
        w -= static_cast<std::int64_t>(v);
        ++v;
      }
      if (v < n) {
        builder.add_undirected_edge(static_cast<VertexId>(v),
                                    static_cast<VertexId>(w));
      }
    }
  }
  return builder.build();
}

Graph erdos_renyi_gnm(std::size_t n, std::uint64_t m, Rng& rng) {
  require(n >= 2 || m == 0, "erdos_renyi_gnm: need n >= 2 for edges");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  require(m <= max_edges, "erdos_renyi_gnm: m exceeds n*(n-1)/2");

  GraphBuilder builder(n);
  // Floyd's algorithm over linearized unordered pairs gives m distinct
  // pairs in O(m) expected time without an O(n^2) bitmap.
  std::vector<std::uint64_t> picked;
  picked.reserve(m);
  for (std::uint64_t j = max_edges - m; j < max_edges; ++j) {
    std::uint64_t t = uniform_index(rng, j + 1);
    if (std::find(picked.begin(), picked.end(), t) != picked.end()) t = j;
    picked.push_back(t);
  }
  for (std::uint64_t code : picked) {
    // Decode pair index -> (u, v), u > v, from the triangular enumeration.
    const auto u = static_cast<std::uint64_t>(
        (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(code))) / 2.0);
    std::uint64_t uu = u;
    while (uu * (uu - 1) / 2 > code) --uu;
    while ((uu + 1) * uu / 2 <= code) ++uu;
    const std::uint64_t vv = code - uu * (uu - 1) / 2;
    builder.add_undirected_edge(static_cast<VertexId>(uu),
                                static_cast<VertexId>(vv));
  }
  return builder.build();
}

Graph configuration_model(std::span<const std::uint32_t> degrees, Rng& rng) {
  std::uint64_t total = 0;
  for (auto d : degrees) total += d;
  require(total % 2 == 0, "configuration_model: degree sum must be even");

  std::vector<VertexId> stubs;
  stubs.reserve(total);
  for (VertexId v = 0; v < degrees.size(); ++v) {
    for (std::uint32_t k = 0; k < degrees[v]; ++k) stubs.push_back(v);
  }
  // Fisher–Yates shuffle, then pair consecutive stubs.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[uniform_index(rng, i)]);
  }
  GraphBuilder builder(degrees.size());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) {
      builder.add_undirected_edge(stubs[i], stubs[i + 1]);
    }
  }
  return builder.build();  // parallel edges collapse in build()
}

std::vector<std::uint32_t> power_law_degrees(std::size_t n, double alpha,
                                             std::uint32_t dmin,
                                             std::uint32_t dmax, Rng& rng) {
  require(dmin >= 1 && dmax >= dmin, "power_law_degrees: 1 <= dmin <= dmax");
  require(alpha > 0.0, "power_law_degrees: alpha > 0");

  std::vector<double> weights(dmax - dmin + 1);
  for (std::uint32_t d = dmin; d <= dmax; ++d) {
    weights[d - dmin] = std::pow(static_cast<double>(d), -alpha);
  }
  const AliasTable table{std::span<const double>(weights)};
  std::vector<std::uint32_t> degrees(n);
  std::uint64_t total = 0;
  for (auto& d : degrees) {
    d = dmin + static_cast<std::uint32_t>(table.sample(rng));
    total += d;
  }
  if (total % 2 != 0) {
    // Bump an arbitrary vertex that can still grow by one.
    for (auto& d : degrees) {
      if (d < dmax) {
        ++d;
        break;
      }
    }
    // If every vertex is already at dmax, shrink one instead.
    total = std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
    if (total % 2 != 0) --degrees.front();
  }
  return degrees;
}

Graph stochastic_block_model(std::span<const std::size_t> block_sizes,
                             std::span<const std::vector<double>> probs,
                             Rng& rng) {
  const std::size_t blocks = block_sizes.size();
  require(blocks >= 1, "stochastic_block_model: at least one block");
  require(probs.size() == blocks, "stochastic_block_model: probs is BxB");
  for (const auto& row : probs) {
    require(row.size() == blocks, "stochastic_block_model: probs is BxB");
    for (double p : row) {
      require(p >= 0.0 && p <= 1.0, "stochastic_block_model: p in [0,1]");
    }
  }

  std::vector<std::size_t> base(blocks, 0);
  std::size_t n = 0;
  for (std::size_t i = 0; i < blocks; ++i) {
    base[i] = n;
    n += block_sizes[i];
  }
  GraphBuilder builder(n);

  // Geometric skipping over each block pair (upper triangle within
  // blocks, full rectangle across blocks).
  const auto add_pairs = [&](std::size_t bi, std::size_t bj, double p) {
    if (p <= 0.0) return;
    const std::size_t rows = block_sizes[bi];
    const std::size_t cols = block_sizes[bj];
    const bool diagonal = bi == bj;
    const double logq = std::log1p(-p);
    // Linearize candidate pairs; for the diagonal case enumerate the
    // strictly-lower triangle.
    const std::uint64_t total =
        diagonal ? static_cast<std::uint64_t>(rows) * (rows - 1) / 2
                 : static_cast<std::uint64_t>(rows) * cols;
    std::uint64_t idx = 0;
    for (;;) {
      if (p >= 1.0) {
        if (idx >= total) break;
      } else {
        const double u = 1.0 - uniform01(rng);
        idx += 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / logq));
        --idx;  // first candidate is idx itself when skip = 0
        if (idx >= total) break;
      }
      std::size_t r, c;
      if (diagonal) {
        // Decode strictly-lower-triangle index.
        const auto rr = static_cast<std::size_t>(
            (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
        std::size_t row = rr;
        while (row * (row - 1) / 2 > idx) --row;
        while ((row + 1) * row / 2 <= idx) ++row;
        r = row;
        c = static_cast<std::size_t>(idx - static_cast<std::uint64_t>(row) *
                                               (row - 1) / 2);
      } else {
        r = static_cast<std::size_t>(idx / cols);
        c = static_cast<std::size_t>(idx % cols);
      }
      builder.add_undirected_edge(static_cast<VertexId>(base[bi] + r),
                                  static_cast<VertexId>(base[bj] + c));
      ++idx;
    }
  };

  for (std::size_t i = 0; i < blocks; ++i) {
    for (std::size_t j = i; j < blocks; ++j) {
      add_pairs(i, j, probs[i][j]);
    }
  }
  return builder.build();
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  require(k >= 1 && 2 * k < n, "watts_strogatz: need 1 <= k and 2k < n");
  require(beta >= 0.0 && beta <= 1.0, "watts_strogatz: beta in [0,1]");

  // Start from the ring lattice, rewire the far endpoint of each edge with
  // probability beta, avoiding self-loops (duplicates collapse in build()).
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (bernoulli(rng, beta)) {
        VertexId w;
        do {
          w = static_cast<VertexId>(uniform_index(rng, n));
        } while (w == u);
        v = w;
      }
      builder.add_undirected_edge(u, v);
    }
  }
  return builder.build();
}

Graph path_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.add_undirected_edge(v, v + 1);
  return builder.build();
}

Graph cycle_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n >= 3");
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.add_undirected_edge(v, static_cast<VertexId>((v + 1) % n));
  }
  return builder.build();
}

Graph star_graph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: n >= 2");
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.add_undirected_edge(0, v);
  return builder.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.add_undirected_edge(u, v);
  }
  return builder.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) {
      builder.add_undirected_edge(u, static_cast<VertexId>(a + v));
    }
  }
  return builder.build();
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  GraphBuilder builder(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.add_undirected_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_undirected_edge(id(r, c), id(r + 1, c));
    }
  }
  return builder.build();
}

Graph disjoint_union(std::span<const Graph> graphs) {
  std::size_t total = 0;
  for (const Graph& g : graphs) total += g.num_vertices();
  GraphBuilder builder(total);
  VertexId base = 0;
  for (const Graph& g : graphs) {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.neighbors(u);
      const auto dirs = g.directions(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const EdgeDir d = dirs[k];
        if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
          builder.add_edge(base + u, base + nbrs[k]);
        }
      }
    }
    base += static_cast<VertexId>(g.num_vertices());
  }
  return builder.build();
}

Graph join_by_single_edge(const Graph& a, const Graph& b) {
  if (a.num_vertices() == 0 || b.num_vertices() == 0) {
    throw std::invalid_argument("join_by_single_edge: both graphs non-empty");
  }
  const std::array<const Graph*, 2> gs{&a, &b};
  std::size_t total = a.num_vertices() + b.num_vertices();
  GraphBuilder builder(total);
  VertexId base = 0;
  std::array<VertexId, 2> min_vertex{0, 0};
  for (std::size_t gi = 0; gi < 2; ++gi) {
    const Graph& g = *gs[gi];
    VertexId best = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (g.degree(u) < g.degree(best)) best = u;
      const auto nbrs = g.neighbors(u);
      const auto dirs = g.directions(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const EdgeDir d = dirs[k];
        if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
          builder.add_edge(base + u, base + nbrs[k]);
        }
      }
    }
    min_vertex[gi] = base + best;
    base += static_cast<VertexId>(g.num_vertices());
  }
  builder.add_undirected_edge(min_vertex[0], min_vertex[1]);
  return builder.build();
}

}  // namespace frontier

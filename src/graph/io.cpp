#include "graph/io.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include <chrono>

#include "core/failpoint.hpp"
#include "core/parallel.hpp"
#include "graph/builder.hpp"
#include "graph/storage.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"

namespace frontier {

// The binary formats store raw little-endian arrays; a big-endian port
// would need byte-swapping read/write paths.
static_assert(std::endian::native == std::endian::little,
              "graph binary IO assumes a little-endian host");

namespace {

constexpr std::uint64_t kMagic = 0x46524f4e54474230ULL;  // "FRONTGB0"
constexpr std::uint64_t kV2HeaderBytes = 40;  // magic,ver,reserved,n,dir,sym

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw IoError("read_binary: truncated stream");
  return value;
}

std::ifstream open_in(const std::string& path, std::ios_base::openmode mode) {
  std::ifstream f(path, mode);
  if (!f) throw IoError("cannot open for reading: " + path);
  return f;
}

// Graph snapshots are created (streamed, possibly GBs — too big to
// buffer for the durable helper), not atomically replaced; a writer that
// needs crash-safe replacement should write to a scratch name and move
// it durably itself.
std::ofstream open_out(const std::string& path, std::ios_base::openmode mode) {  // lint:allow(durable-file-replacement): streamed create-only snapshot writer
  std::ofstream f(path, mode);  // lint:allow(durable-file-replacement): streamed create-only snapshot writer
  if (!f) throw IoError("cannot open for writing: " + path);
  return f;
}

/// Flushes and verifies the stream so a full disk surfaces as IoError
/// instead of silently losing the tail of the file.
void flush_or_throw(std::ofstream& f, const std::string& what,  // lint:allow(durable-file-replacement): helper for the create-only writers above
                    const std::string& path) {
  f.flush();
  if (!f) throw IoError(what + ": flush failed (disk full?): " + path);
}

// ---------------------------------------------------------------------------
// Text parsing: chunked std::from_chars scanner.
// ---------------------------------------------------------------------------

struct ChunkResult {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  std::size_t lines = 0;       // lines fully visited in this chunk
  std::size_t error_line = 0;  // 1-based line within the chunk; 0 = no error
  std::string error_what;      // message without position info
};

/// Parses one chunk whose start is at a line boundary. Stops at the first
/// malformed line, recording the local line number and message.
void parse_chunk(std::string_view text, ChunkResult& out) {
  const char* p = text.data();
  const char* const end = p + text.size();
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  while (p < end) {
    const char* nl =
        static_cast<const char*>(std::memchr(p, '\n', end - p));
    const char* const eol = nl != nullptr ? nl : end;
    ++out.lines;
    const char* q = p;
    while (q < eol && is_space(*q)) ++q;
    if (q == eol || *q == '#') {  // blank line or comment
      p = nl != nullptr ? nl + 1 : end;
      continue;
    }
    const auto fail = [&](const char* what) {
      out.error_line = out.lines;
      out.error_what = what;
    };
    std::uint64_t ids[2] = {0, 0};
    for (int k = 0; k < 2 && out.error_line == 0; ++k) {
      if (q < eol && *q == '-') {
        fail("negative vertex id");
        break;
      }
      const auto [ptr, ec] = std::from_chars(q, eol, ids[k]);
      if (ec == std::errc::result_out_of_range) {
        fail("vertex id out of range");
        break;
      }
      if (ec != std::errc() || (ptr < eol && !is_space(*ptr))) {
        fail(k == 0 ? "expected two vertex ids" : "malformed second id");
        break;
      }
      q = ptr;
      while (q < eol && is_space(*q)) ++q;
      if (k == 0 && q == eol) {
        fail("expected two vertex ids");
        break;
      }
    }
    if (out.error_line == 0 && q < eol && *q != '#') {
      fail("trailing garbage after edge");
    }
    if (out.error_line != 0) return;
    out.edges.emplace_back(ids[0], ids[1]);
    p = nl != nullptr ? nl + 1 : end;
  }
}

Graph parse_edge_list_text(std::string_view text, std::size_t threads) {
  // Auto mode only fans out when each worker gets at least ~1 MiB of text;
  // an explicit thread count is honored (down to one line per chunk) so
  // tests can exercise the parallel path on small inputs.
  constexpr std::size_t kAutoBytesPerWorker = std::size_t{1} << 20;
  std::size_t workers =
      threads == 0
          ? std::min(resolve_threads(0),
                     std::max<std::size_t>(text.size() / kAutoBytesPerWorker,
                                           1))
          : std::min(threads, std::max<std::size_t>(text.size(), 1));

  // Chunk boundaries: byte targets advanced to the next line start.
  std::vector<std::string_view> chunks;
  std::size_t begin = 0;
  for (std::size_t w = 1; w <= workers && begin < text.size(); ++w) {
    std::size_t target = text.size() * w / workers;
    if (w == workers) {
      target = text.size();
    } else {
      const std::size_t nl = text.find('\n', std::max(target, begin));
      target = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    if (target > begin) chunks.push_back(text.substr(begin, target - begin));
    begin = target;
  }

  std::vector<ChunkResult> results(chunks.size());
  parallel_for_ranges(chunks.size(), chunks.size(),
                      [&](std::size_t, std::size_t cb, std::size_t ce) {
                        for (std::size_t c = cb; c < ce; ++c) {
                          parse_chunk(chunks[c], results[c]);
                        }
                      });

  std::size_t total_edges = 0;
  std::size_t lines_before = 0;
  for (const ChunkResult& r : results) {
    if (r.error_line != 0) {
      throw IoError("read_edge_list: " + r.error_what + " at line " +
                    std::to_string(lines_before + r.error_line));
    }
    lines_before += r.lines;
    total_edges += r.edges.size();
  }

  // Densify by *numeric order* so graphs written by write_edge_list (which
  // are already dense) round-trip with identical vertex ids.
  std::vector<std::uint64_t> ids;
  ids.reserve(total_edges * 2);
  for (const ChunkResult& r : results) {
    for (const auto& [a, b] : r.edges) {
      ids.push_back(a);
      ids.push_back(b);
    }
  }
  parallel_sort(ids.begin(), ids.end(), std::less<>{}, threads);
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::unordered_map<std::uint64_t, VertexId> dense;
  dense.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    dense.emplace(ids[i], static_cast<VertexId>(i));
  }

  GraphBuilder builder(ids.size());
  for (const ChunkResult& r : results) {
    for (const auto& [a, b] : r.edges) {
      builder.add_edge(dense.at(a), dense.at(b));
    }
  }
  return builder.build(threads);
}

// ---------------------------------------------------------------------------
// Binary format v2 layout.
// ---------------------------------------------------------------------------

constexpr std::uint64_t pad8(std::uint64_t pos) { return (pos + 7) & ~7ULL; }

struct V2Header {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_directed_edges = 0;
  std::uint64_t num_symmetric_edges = 0;
};

/// Byte offsets of the five arrays relative to the header start, plus the
/// total snapshot size. Call validate_v2_header first: with n and s bounded
/// none of the sums below can overflow.
struct V2Layout {
  std::uint64_t offsets;
  std::uint64_t neighbors;
  std::uint64_t directions;
  std::uint64_t out_degree;
  std::uint64_t in_degree;
  std::uint64_t total;
};

V2Layout v2_layout(const V2Header& h) {
  const std::uint64_t n = h.num_vertices;
  const std::uint64_t s = h.num_symmetric_edges;
  V2Layout l{};
  std::uint64_t pos = kV2HeaderBytes;
  l.offsets = pos = pad8(pos);
  pos += (n + 1) * sizeof(EdgeIndex);
  l.neighbors = pos = pad8(pos);
  pos += s * sizeof(VertexId);
  l.directions = pos = pad8(pos);
  pos += s * sizeof(EdgeDir);
  l.out_degree = pos = pad8(pos);
  pos += n * sizeof(std::uint32_t);
  l.in_degree = pos = pad8(pos);
  pos += n * sizeof(std::uint32_t);
  l.total = pos;
  return l;
}

/// Rejects headers whose counts are inconsistent or cannot fit in
/// `available` payload bytes (when known) *before* any allocation.
void validate_v2_header(const V2Header& h,
                        std::optional<std::uint64_t> available) {
  if (h.num_vertices > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw IoError("read_binary: vertex count too large");
  }
  // Each symmetric edge occupies at least 5 bytes (neighbor + direction),
  // so any plausible s is far below 2^60; larger values mean corruption
  // and would overflow the layout arithmetic.
  if (h.num_symmetric_edges > (std::uint64_t{1} << 60)) {
    throw IoError("read_binary: symmetric edge count too large");
  }
  if (h.num_directed_edges > h.num_symmetric_edges) {
    throw IoError("read_binary: directed edge count exceeds symmetric count");
  }
  if (available.has_value()) {
    const V2Layout l = v2_layout(h);
    if (l.total - kV2HeaderBytes > *available) {
      throw IoError("read_binary: header counts exceed stream size");
    }
  }
}

/// Bytes left in a seekable stream; nullopt when the stream cannot seek.
std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const auto pos = is.tellg();
  if (pos < 0) return std::nullopt;
  is.seekg(0, std::ios_base::end);
  const auto endpos = is.tellg();
  is.seekg(pos);
  if (endpos < 0 || endpos < pos) return std::nullopt;
  return static_cast<std::uint64_t>(endpos - pos);
}

/// Reads `count` elements into `out`, growing in bounded steps so a corrupt
/// count on a non-seekable stream cannot trigger a huge up-front allocation.
template <typename T>
void read_array_chunked(std::istream& is, std::vector<T>& out,
                        std::uint64_t count) {
  constexpr std::uint64_t kStepBytes = std::uint64_t{1} << 24;  // 16 MiB
  const std::uint64_t step = std::max<std::uint64_t>(kStepBytes / sizeof(T), 1);
  out.clear();
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t take = std::min(count - done, step);
    out.resize(static_cast<std::size_t>(done + take));
    is.read(reinterpret_cast<char*>(out.data() + done),
            static_cast<std::streamsize>(take * sizeof(T)));
    if (!is) throw IoError("read_binary: truncated stream");
    done += take;
  }
}

void skip_padding(std::istream& is, std::uint64_t& pos) {
  while (pos % 8 != 0) {
    if (is.get() == std::char_traits<char>::eof()) {
      throw IoError("read_binary: truncated stream");
    }
    ++pos;
  }
}

Graph read_v1_body(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw IoError("read_binary: vertex count too large");
  }
  if (const auto avail = remaining_bytes(is);
      avail.has_value() && m > *avail / (2 * sizeof(std::uint32_t))) {
    throw IoError("read_binary: header counts exceed stream size");
  }
  GraphBuilder builder(n);
  std::vector<std::uint32_t> buf;
  std::uint64_t done = 0;
  constexpr std::uint64_t kEdgesPerChunk = std::uint64_t{1} << 20;
  while (done < m) {
    const std::uint64_t take = std::min(m - done, kEdgesPerChunk);
    read_array_chunked(is, buf, take * 2);
    for (std::uint64_t i = 0; i < take; ++i) {
      const std::uint32_t u = buf[2 * i];
      const std::uint32_t v = buf[2 * i + 1];
      if (u >= n || v >= n) {
        throw IoError("read_binary: edge endpoint out of range");
      }
      builder.add_edge(u, v);
    }
    done += take;
  }
  return builder.build();
}

V2Header read_v2_header_tail(std::istream& is) {
  V2Header h{};
  h.num_vertices = read_pod<std::uint64_t>(is);
  h.num_directed_edges = read_pod<std::uint64_t>(is);
  h.num_symmetric_edges = read_pod<std::uint64_t>(is);
  return h;
}

Graph read_v2_body(std::istream& is) {
  const V2Header h = read_v2_header_tail(is);
  validate_v2_header(h, remaining_bytes(is));

  GraphStorage::Arrays arrays;
  arrays.num_directed_edges = h.num_directed_edges;
  std::uint64_t pos = kV2HeaderBytes;  // header fully consumed, 8-aligned
  const auto read_array = [&](auto& vec, std::uint64_t count) {
    skip_padding(is, pos);
    read_array_chunked(is, vec, count);
    pos += count * sizeof(typename std::remove_reference_t<
                          decltype(vec)>::value_type);
  };
  read_array(arrays.offsets, h.num_vertices + 1);
  read_array(arrays.neighbors, h.num_symmetric_edges);
  read_array(arrays.directions, h.num_symmetric_edges);
  read_array(arrays.out_degree, h.num_vertices);
  read_array(arrays.in_degree, h.num_vertices);
  // The stream path already pays O(n + s); validate the payload's
  // structure — offset monotonicity, neighbor bounds, direction-flag
  // domain, degree sums — so a bit-flipped snapshot surfaces as IoError,
  // not a downstream crash. (Per-vertex neighbor sortedness is the one
  // invariant left unchecked.)
  if (arrays.offsets.front() != 0 ||
      arrays.offsets.back() != h.num_symmetric_edges ||
      !std::is_sorted(arrays.offsets.begin(), arrays.offsets.end())) {
    throw IoError("read_binary: inconsistent offset array");
  }
  for (const VertexId v : arrays.neighbors) {
    if (v >= h.num_vertices) {
      throw IoError("read_binary: neighbor id out of range");
    }
  }
  for (const EdgeDir d : arrays.directions) {
    const auto bits = static_cast<std::uint8_t>(d);
    if (bits < 1 || bits > 3) {
      throw IoError("read_binary: invalid direction flag");
    }
  }
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (const std::uint32_t d : arrays.out_degree) out_sum += d;
  for (const std::uint32_t d : arrays.in_degree) in_sum += d;
  if (out_sum != h.num_directed_edges || in_sum != h.num_directed_edges) {
    throw IoError("read_binary: degree arrays disagree with edge count");
  }
  return Graph(GraphStorage::from_arrays(std::move(arrays)));
}

#if FRONTIER_HAS_MMAP
Graph map_v2_file(MmapFile file, const std::string& path) {
  const std::byte* base = file.data();
  V2Header h{};
  std::memcpy(&h.num_vertices, base + 16, sizeof(std::uint64_t));
  std::memcpy(&h.num_directed_edges, base + 24, sizeof(std::uint64_t));
  std::memcpy(&h.num_symmetric_edges, base + 32, sizeof(std::uint64_t));
  validate_v2_header(h, std::nullopt);
  const V2Layout l = v2_layout(h);
  if (l.total != file.size()) {
    throw IoError("read_binary: snapshot size mismatch (" + path +
                  " is truncated or corrupt)");
  }

  // The arrays start on 8-byte boundaries of the page-aligned mapping, so
  // the reinterpret_casts below are properly aligned. Unlike the stream
  // path, array *contents* beyond the O(1) checks here are trusted — a
  // full scan would defeat the O(1)-load contract. Snapshots from
  // untrusted sources should go through read_binary (stream) once.
  GraphStorage::Views views;
  views.num_directed_edges = h.num_directed_edges;
  views.offsets = {reinterpret_cast<const EdgeIndex*>(base + l.offsets),
                   static_cast<std::size_t>(h.num_vertices + 1)};
  views.neighbors = {reinterpret_cast<const VertexId*>(base + l.neighbors),
                     static_cast<std::size_t>(h.num_symmetric_edges)};
  views.directions = {reinterpret_cast<const EdgeDir*>(base + l.directions),
                      static_cast<std::size_t>(h.num_symmetric_edges)};
  views.out_degree = {
      reinterpret_cast<const std::uint32_t*>(base + l.out_degree),
      static_cast<std::size_t>(h.num_vertices)};
  views.in_degree = {
      reinterpret_cast<const std::uint32_t*>(base + l.in_degree),
      static_cast<std::size_t>(h.num_vertices)};
  if (views.offsets.front() != 0 ||
      views.offsets.back() != h.num_symmetric_edges) {
    throw IoError("read_binary: inconsistent offset array");
  }
  return Graph(GraphStorage::from_mapped(std::move(file), views));
}
#endif

/// Telemetry seam for the file-load entry points: counts loads per mode
/// (text parse, binary mmap, binary stream rebuild), records wall time and
/// input bytes, and samples the post-load peak RSS. Gated on the global
/// metrics_enabled() switch so uninstrumented loads pay one relaxed load.
void note_graph_load(const char* mode, std::chrono::steady_clock::time_point
                     start, std::uint64_t bytes) {
  if (!metrics_enabled()) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start).count();
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter(std::string("graph.load.") + mode + "_total").add(1);
  reg.histogram("graph.load_ns").observe(
      ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  reg.histogram("graph.load_bytes").observe(bytes);
  reg.gauge("graph.peak_rss_bytes")
      .set(static_cast<double>(process_usage().peak_rss_bytes));
}

[[maybe_unused]] std::uint64_t file_size_of(const std::string& path) {
  std::ifstream f(path, std::ios_base::binary | std::ios_base::ate);
  const auto size = f.tellg();
  return (f && size > 0) ? static_cast<std::uint64_t>(size) : 0;
}

}  // namespace

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# libfrontier directed edge list: " << g.num_vertices()
     << " vertices, " << g.num_directed_edges() << " directed edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto dirs = g.directions(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeDir d = dirs[k];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        os << u << ' ' << nbrs[k] << '\n';
      }
    }
  }
  if (!os) throw IoError("write_edge_list: stream failure");
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  FRONTIER_FAILPOINT("graph.write");
  auto f = open_out(path, std::ios_base::out);
  write_edge_list(g, f);
  flush_or_throw(f, "write_edge_list", path);
}

Graph read_edge_list(std::istream& is, std::size_t threads) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = std::move(buffer).str();
  return parse_edge_list_text(text, threads);
}

Graph read_edge_list_file(const std::string& path, std::size_t threads) {
  FRONTIER_FAILPOINT("graph.read");
  const auto start = std::chrono::steady_clock::now();
#if FRONTIER_HAS_MMAP
  // Map the text read-only instead of copying it: the parser only needs a
  // string_view, so peak memory stays at the parsed edges, not file + copy.
  const MmapFile file = MmapFile::open(path);
  const char* data = reinterpret_cast<const char*>(file.data());
  Graph g = parse_edge_list_text(
      data == nullptr ? std::string_view{}
                      : std::string_view(data, file.size()),
      threads);
  note_graph_load("text", start, file.size());
  return g;
#else
  auto f = open_in(path, std::ios_base::in | std::ios_base::binary);
  f.seekg(0, std::ios_base::end);
  const auto size = f.tellg();
  if (size < 0) throw IoError("read_edge_list: cannot size " + path);
  f.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  f.read(text.data(), size);
  if (!f && size != 0) throw IoError("read_edge_list: short read: " + path);
  Graph g = parse_edge_list_text(text, threads);
  note_graph_load("text", start, static_cast<std::uint64_t>(size));
  return g;
#endif
}

void write_binary(const Graph& g, std::ostream& os) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t s = g.num_symmetric_edges();
  write_pod(os, kMagic);
  write_pod<std::uint32_t>(os, 2);  // format version
  write_pod<std::uint32_t>(os, 0);  // reserved (alignment)
  write_pod<std::uint64_t>(os, n);
  write_pod<std::uint64_t>(os, g.num_directed_edges());
  write_pod<std::uint64_t>(os, s);

  std::uint64_t pos = kV2HeaderBytes;
  const auto write_array = [&](const void* data, std::uint64_t bytes) {
    while (pos % 8 != 0) {
      os.put('\0');
      ++pos;
    }
    os.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
    pos += bytes;
  };
  const auto offsets = g.offsets();
  if (offsets.empty()) {
    // Default-constructed empty graph: emit the canonical one-entry array.
    const EdgeIndex zero = 0;
    write_array(&zero, sizeof(zero));
  } else {
    write_array(offsets.data(), offsets.size_bytes());
  }
  write_array(g.neighbor_array().data(), g.neighbor_array().size_bytes());
  write_array(g.direction_array().data(), g.direction_array().size_bytes());
  write_array(g.out_degree_array().data(),
              g.out_degree_array().size_bytes());
  write_array(g.in_degree_array().data(), g.in_degree_array().size_bytes());
  if (!os) throw IoError("write_binary: stream failure");
}

void write_binary_file(const Graph& g, const std::string& path) {
  FRONTIER_FAILPOINT("graph.write");
  auto f = open_out(path, std::ios_base::out | std::ios_base::binary);
  write_binary(g, f);
  flush_or_throw(f, "write_binary", path);
}

void write_binary_v1(const Graph& g, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod<std::uint32_t>(os, 1);  // legacy format version
  write_pod<std::uint64_t>(os, g.num_vertices());
  write_pod<std::uint64_t>(os, g.num_directed_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto dirs = g.directions(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeDir d = dirs[k];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        write_pod<std::uint32_t>(os, u);
        write_pod<std::uint32_t>(os, nbrs[k]);
      }
    }
  }
  if (!os) throw IoError("write_binary_v1: stream failure");
}

Graph read_binary(std::istream& is) {
  if (read_pod<std::uint64_t>(is) != kMagic) {
    throw IoError("read_binary: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version == 1) return read_v1_body(is);
  if (version == 2) {
    (void)read_pod<std::uint32_t>(is);  // reserved
    return read_v2_body(is);
  }
  throw IoError("read_binary: unsupported version");
}

Graph read_binary_file(const std::string& path) {
  FRONTIER_FAILPOINT("graph.read");
  const auto start = std::chrono::steady_clock::now();
#if FRONTIER_HAS_MMAP
  MmapFile file = MmapFile::open(path);
  if (file.size() < kV2HeaderBytes) {
    // Could still be a (short, corrupt) v1 header; the stream path produces
    // the precise error.
    auto f = open_in(path, std::ios_base::in | std::ios_base::binary);
    return read_binary(f);
  }
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, file.data(), sizeof(magic));
  std::memcpy(&version, file.data() + 8, sizeof(version));
  if (magic != kMagic) throw IoError("read_binary: bad magic");
  if (version == 2) {
    const std::uint64_t bytes = file.size();
    Graph g = map_v2_file(std::move(file), path);
    note_graph_load("binary_mmap", start, bytes);
    return g;
  }
#endif
  auto f = open_in(path, std::ios_base::in | std::ios_base::binary);
  Graph g = read_binary(f);
  note_graph_load("binary_stream", start, file_size_of(path));
  return g;
}

}  // namespace frontier

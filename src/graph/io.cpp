#include "graph/io.hpp"

#include <algorithm>

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "graph/builder.hpp"

namespace frontier {

namespace {

constexpr std::uint64_t kMagic = 0x46524f4e54474230ULL;  // "FRONTGB0"

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw IoError("read_binary: truncated stream");
  return value;
}

std::ifstream open_in(const std::string& path, std::ios_base::openmode mode) {
  std::ifstream f(path, mode);
  if (!f) throw IoError("cannot open for reading: " + path);
  return f;
}

std::ofstream open_out(const std::string& path, std::ios_base::openmode mode) {
  std::ofstream f(path, mode);
  if (!f) throw IoError("cannot open for writing: " + path);
  return f;
}

}  // namespace

void write_edge_list(const Graph& g, std::ostream& os) {
  os << "# libfrontier directed edge list: " << g.num_vertices()
     << " vertices, " << g.num_directed_edges() << " directed edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto dirs = g.directions(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeDir d = dirs[k];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        os << u << ' ' << nbrs[k] << '\n';
      }
    }
  }
  if (!os) throw IoError("write_edge_list: stream failure");
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  auto f = open_out(path, std::ios_base::out);
  write_edge_list(g, f);
}

Graph read_edge_list(std::istream& is) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      throw IoError("read_edge_list: parse error at line " +
                    std::to_string(lineno));
    }
    raw.emplace_back(a, b);
  }

  // Densify by *numeric order* so graphs written by write_edge_list (which
  // are already dense) round-trip with identical vertex ids.
  std::vector<std::uint64_t> ids;
  ids.reserve(raw.size() * 2);
  for (const auto& [a, b] : raw) {
    ids.push_back(a);
    ids.push_back(b);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::unordered_map<std::uint64_t, VertexId> dense;
  dense.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    dense.emplace(ids[i], static_cast<VertexId>(i));
  }

  GraphBuilder builder(ids.size());
  for (const auto& [a, b] : raw) {
    builder.add_edge(dense.at(a), dense.at(b));
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  auto f = open_in(path, std::ios_base::in);
  return read_edge_list(f);
}

void write_binary(const Graph& g, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod<std::uint32_t>(os, 1);  // format version
  write_pod<std::uint64_t>(os, g.num_vertices());
  write_pod<std::uint64_t>(os, g.num_directed_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto dirs = g.directions(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeDir d = dirs[k];
      if (d == EdgeDir::kForward || d == EdgeDir::kBoth) {
        write_pod<std::uint32_t>(os, u);
        write_pod<std::uint32_t>(os, nbrs[k]);
      }
    }
  }
  if (!os) throw IoError("write_binary: stream failure");
}

void write_binary_file(const Graph& g, const std::string& path) {
  auto f = open_out(path, std::ios_base::out | std::ios_base::binary);
  write_binary(g, f);
}

Graph read_binary(std::istream& is) {
  if (read_pod<std::uint64_t>(is) != kMagic) {
    throw IoError("read_binary: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != 1) throw IoError("read_binary: unsupported version");
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);
  GraphBuilder builder(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = read_pod<std::uint32_t>(is);
    const auto v = read_pod<std::uint32_t>(is);
    builder.add_edge(u, v);
  }
  return builder.build();
}

Graph read_binary_file(const std::string& path) {
  auto f = open_in(path, std::ios_base::in | std::ios_base::binary);
  return read_binary(f);
}

}  // namespace frontier

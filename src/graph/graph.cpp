#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace frontier {

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool Graph::has_directed_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return false;
  const auto k = static_cast<std::size_t>(it - nbrs.begin());
  const EdgeDir d = directions(u)[k];
  return d == EdgeDir::kForward || d == EdgeDir::kBoth;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

Edge Graph::edge_at(EdgeIndex j) const noexcept {
  // Binary search for the source vertex owning slot j.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), j);
  const auto u = static_cast<VertexId>((it - offsets_.begin()) - 1);
  return Edge{u, neighbors_[j]};
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph{|V|=" << num_vertices() << ", |E_d|=" << num_directed_edges()
     << ", |E|/2=" << num_undirected_edges()
     << ", avg_deg=" << average_degree() << ", max_deg=" << max_degree()
     << "}";
  return os.str();
}

}  // namespace frontier

#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "graph/storage.hpp"

namespace frontier {

GraphBuilder::GraphBuilder(std::size_t num_vertices) : n_(num_vertices) {
  if (num_vertices > static_cast<std::size_t>(kInvalidVertex)) {
    throw std::invalid_argument("GraphBuilder: too many vertices");
  }
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder::add_edge: vertex id out of range");
  }
  edges_.push_back(Edge{u, v});
}

void GraphBuilder::add_undirected_edge(VertexId u, VertexId v) {
  add_edge(u, v);
  add_edge(v, u);
}

Graph GraphBuilder::build(std::size_t threads) const {
  // Work on a sorted, deduplicated copy of the directed edge list with
  // self-loops removed. The two sorts dominate the build for large graphs,
  // so both run through parallel_sort (sequential below ~64k elements).
  std::vector<Edge> dir;
  dir.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (e.u != e.v) dir.push_back(e);
  }
  parallel_sort(
      dir.begin(), dir.end(),
      [](const Edge& a, const Edge& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      },
      threads);
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  GraphStorage::Arrays arrays;
  arrays.num_directed_edges = dir.size();
  arrays.out_degree.assign(n_, 0);
  arrays.in_degree.assign(n_, 0);
  for (const Edge& e : dir) {
    ++arrays.out_degree[e.u];
    ++arrays.in_degree[e.v];
  }

  // Symmetric adjacency: emit each directed edge in both orientations,
  // tagged with its direction relative to the emitting endpoint, then merge
  // per (source, target) pair. Entries with equal (src, dst) may appear in
  // either order after the unstable sort; the flag merge below ORs them, so
  // the result is identical regardless.
  struct Entry {
    VertexId src;
    VertexId dst;
    std::uint8_t dir;  // bit 0: forward (src->dst in E_d); bit 1: backward
  };
  std::vector<Entry> entries;
  entries.reserve(dir.size() * 2);
  for (const Edge& e : dir) {
    entries.push_back({e.u, e.v, 1});
    entries.push_back({e.v, e.u, 2});
  }
  parallel_sort(
      entries.begin(), entries.end(),
      [](const Entry& a, const Entry& b) {
        return a.src != b.src ? a.src < b.src : a.dst < b.dst;
      },
      threads);

  arrays.offsets.assign(n_ + 1, 0);
  arrays.neighbors.reserve(entries.size());
  arrays.directions.reserve(entries.size());

  std::size_t i = 0;
  for (VertexId v = 0; v < n_; ++v) {
    arrays.offsets[v] = arrays.neighbors.size();
    while (i < entries.size() && entries[i].src == v) {
      const VertexId dst = entries[i].dst;
      std::uint8_t flags = 0;
      while (i < entries.size() && entries[i].src == v &&
             entries[i].dst == dst) {
        flags |= entries[i].dir;
        ++i;
      }
      arrays.neighbors.push_back(dst);
      arrays.directions.push_back(static_cast<EdgeDir>(flags));
    }
  }
  arrays.offsets[n_] = arrays.neighbors.size();
  return Graph(GraphStorage::from_arrays(std::move(arrays)));
}

}  // namespace frontier

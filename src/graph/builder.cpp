#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace frontier {

GraphBuilder::GraphBuilder(std::size_t num_vertices) : n_(num_vertices) {
  if (num_vertices > static_cast<std::size_t>(kInvalidVertex)) {
    throw std::invalid_argument("GraphBuilder: too many vertices");
  }
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder::add_edge: vertex id out of range");
  }
  edges_.push_back(Edge{u, v});
}

void GraphBuilder::add_undirected_edge(VertexId u, VertexId v) {
  add_edge(u, v);
  add_edge(v, u);
}

Graph GraphBuilder::build() const {
  // Work on a sorted, deduplicated copy of the directed edge list with
  // self-loops removed.
  std::vector<Edge> dir;
  dir.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (e.u != e.v) dir.push_back(e);
  }
  std::sort(dir.begin(), dir.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  Graph g;
  g.num_directed_edges_ = dir.size();
  g.out_degree_.assign(n_, 0);
  g.in_degree_.assign(n_, 0);
  for (const Edge& e : dir) {
    ++g.out_degree_[e.u];
    ++g.in_degree_[e.v];
  }

  // Symmetric adjacency: emit each directed edge in both orientations,
  // tagged with its direction relative to the emitting endpoint, then merge
  // per (source, target) pair.
  struct Entry {
    VertexId src;
    VertexId dst;
    std::uint8_t dir;  // bit 0: forward (src->dst in E_d); bit 1: backward
  };
  std::vector<Entry> entries;
  entries.reserve(dir.size() * 2);
  for (const Edge& e : dir) {
    entries.push_back({e.u, e.v, 1});
    entries.push_back({e.v, e.u, 2});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  g.offsets_.assign(n_ + 1, 0);
  g.neighbors_.clear();
  g.directions_.clear();
  g.neighbors_.reserve(entries.size());
  g.directions_.reserve(entries.size());

  std::size_t i = 0;
  for (VertexId v = 0; v < n_; ++v) {
    g.offsets_[v] = g.neighbors_.size();
    while (i < entries.size() && entries[i].src == v) {
      const VertexId dst = entries[i].dst;
      std::uint8_t flags = 0;
      while (i < entries.size() && entries[i].src == v &&
             entries[i].dst == dst) {
        flags |= entries[i].dir;
        ++i;
      }
      g.neighbors_.push_back(dst);
      g.directions_.push_back(static_cast<EdgeDir>(flags));
    }
  }
  g.offsets_[n_] = g.neighbors_.size();
  return g;
}

}  // namespace frontier

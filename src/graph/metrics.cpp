#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "graph/components.hpp"

namespace frontier {

std::uint32_t degree_of(const Graph& g, VertexId v, DegreeKind kind) noexcept {
  switch (kind) {
    case DegreeKind::kIn:
      return g.in_degree(v);
    case DegreeKind::kOut:
      return g.out_degree(v);
    case DegreeKind::kSymmetric:
    default:
      return g.degree(v);
  }
}

std::vector<double> degree_distribution(const Graph& g, DegreeKind kind) {
  std::vector<std::uint64_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = degree_of(g, v, kind);
    if (d >= counts.size()) counts.resize(d + 1, 0);
    ++counts[d];
  }
  std::vector<double> theta(counts.size(), 0.0);
  const double n = static_cast<double>(g.num_vertices());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    theta[i] = n > 0 ? static_cast<double>(counts[i]) / n : 0.0;
  }
  return theta;
}

std::vector<double> ccdf_from_pdf(const std::vector<double>& theta) {
  std::vector<double> gamma(theta.size(), 0.0);
  double tail = 0.0;
  for (std::size_t i = theta.size(); i-- > 0;) {
    gamma[i] = tail;
    tail += theta[i];
  }
  return gamma;
}

double exact_label_density(const Graph& g,
                           const std::function<bool(VertexId)>& pred) {
  if (g.num_vertices() == 0) return 0.0;
  std::uint64_t hits = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (pred(v)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(g.num_vertices());
}

double exact_assortativity(const Graph& g) {
  // Correlation of (outdeg(u), indeg(v)) over directed edges (u,v) ∈ E_d.
  double n = 0.0;
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto dirs = g.directions(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeDir d = dirs[k];
      if (d != EdgeDir::kForward && d != EdgeDir::kBoth) continue;
      const double x = g.out_degree(u);
      const double y = g.in_degree(nbrs[k]);
      n += 1.0;
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
    }
  }
  if (n == 0.0) return 0.0;
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

std::uint32_t shared_neighbors(const Graph& g, VertexId u,
                               VertexId v) noexcept {
  const auto a = g.neighbors(u);
  const auto b = g.neighbors(v);
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<std::uint64_t> triangles_per_vertex(const Graph& g) {
  // ∆(v) = ½ Σ_{u ∈ N(v)} |N(v) ∩ N(u)|: each triangle through v is counted
  // once per participating edge incident to v, i.e. twice.
  std::vector<std::uint64_t> tri(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint64_t twice = 0;
    for (VertexId u : g.neighbors(v)) twice += shared_neighbors(g, v, u);
    tri[v] = twice / 2;
  }
  return tri;
}

double exact_global_clustering(const Graph& g) {
  const auto tri = triangles_per_vertex(g);
  std::uint64_t eligible = 0;
  double sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = g.degree(v);
    if (d < 2) continue;
    ++eligible;
    sum += static_cast<double>(tri[v]) / (d * (d - 1.0) / 2.0);
  }
  return eligible == 0 ? 0.0 : sum / static_cast<double>(eligible);
}

std::vector<double> average_neighbor_degree(const Graph& g) {
  std::vector<double> sum;
  std::vector<std::uint64_t> count;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t k = g.degree(v);
    if (k == 0) continue;
    if (k >= sum.size()) {
      sum.resize(k + 1, 0.0);
      count.resize(k + 1, 0);
    }
    for (VertexId u : g.neighbors(v)) {
      sum[k] += static_cast<double>(g.degree(u));
    }
    count[k] += k;
  }
  std::vector<double> knn(sum.size(), 0.0);
  for (std::size_t k = 0; k < sum.size(); ++k) {
    if (count[k] > 0) knn[k] = sum[k] / static_cast<double>(count[k]);
  }
  return knn;
}

GraphSummary summarize(const Graph& g, std::string name) {
  GraphSummary s;
  s.name = std::move(name);
  s.num_vertices = g.num_vertices();
  s.num_directed_edges = g.num_directed_edges();
  s.average_degree = g.average_degree();
  if (g.num_vertices() > 0) {
    const ComponentInfo info = connected_components(g);
    s.lcc_size = info.size[info.largest()];
    if (s.average_degree > 0.0) {
      s.wmax = static_cast<double>(g.max_degree()) / s.average_degree;
    }
  }
  return s;
}

}  // namespace frontier

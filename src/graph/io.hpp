// Graph persistence.
//
// Text: whitespace-separated edge list (one directed edge "u v" per line,
// '#' comments, sparse ids densified by numeric order). Parsing is a
// chunked, multi-threaded std::from_chars scanner; malformed lines
// (negative ids, non-numeric tokens, trailing garbage) raise IoError with
// the 1-based line number.
//
// Binary: format v2 snapshot — a 40-byte header (magic, version, vertex /
// directed-edge / symmetric-edge counts) followed by the raw little-endian
// CSR arrays (offsets, neighbors, directions, out/in degrees), each
// starting on an 8-byte boundary. read_binary_file memory-maps a v2 file
// and serves the arrays zero-copy, so loading is O(1) in the graph size;
// header counts are bounds-checked against the file size before anything
// is touched. Legacy v1 snapshots (per-edge u,v pairs) remain readable
// through the rebuild path.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/io_error.hpp"  // IoError lives in core; re-exported here
#include "graph/graph.hpp"

namespace frontier {

/// Writes the directed edge list of g ("u v" per line).
void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Reads a directed edge list. Vertex ids may be arbitrary (sparse)
/// non-negative integers; they are densified in numeric order. `threads`
/// resolves like resolve_threads (0 = hardware concurrency); the result is
/// identical for every thread count. Throws IoError (with line number) on
/// negative ids, non-numeric tokens, or trailing garbage.
[[nodiscard]] Graph read_edge_list(std::istream& is, std::size_t threads = 0);
[[nodiscard]] Graph read_edge_list_file(const std::string& path,
                                        std::size_t threads = 0);

/// Writes the format-v2 binary snapshot (header + raw CSR arrays).
void write_binary(const Graph& g, std::ostream& os);
void write_binary_file(const Graph& g, const std::string& path);

/// Legacy format-v1 writer (per-edge u,v pairs). Kept so migration tooling
/// and tests can produce v1 inputs; new snapshots should be v2.
void write_binary_v1(const Graph& g, std::ostream& os);

/// Reads a v1 or v2 snapshot from a stream (always into owned arrays).
[[nodiscard]] Graph read_binary(std::istream& is);

/// Reads a snapshot file. v2 files are memory-mapped zero-copy (O(1) load;
/// Graph::is_memory_mapped() reports true); v1 files go through the legacy
/// rebuild path. Header counts are validated against the file size first.
[[nodiscard]] Graph read_binary_file(const std::string& path);

}  // namespace frontier

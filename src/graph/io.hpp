// Graph persistence: whitespace-separated edge-list text (one directed edge
// "u v" per line, '#' comments) and a compact binary snapshot.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace frontier {

/// Error for malformed files / failed streams.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes the directed edge list of g ("u v" per line).
void write_edge_list(const Graph& g, std::ostream& os);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Reads a directed edge list. Vertex ids may be arbitrary (sparse)
/// non-negative integers; they are densified in first-appearance order.
/// Throws IoError on parse failure.
[[nodiscard]] Graph read_edge_list(std::istream& is);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

/// Binary snapshot (magic + version + CSR arrays); ~4x smaller and ~20x
/// faster to load than text for large graphs.
void write_binary(const Graph& g, std::ostream& os);
void write_binary_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph read_binary(std::istream& is);
[[nodiscard]] Graph read_binary_file(const std::string& path);

}  // namespace frontier

// BFS distances and distance summaries over the symmetric graph G.
// Supporting tooling for diagnosing walker trapping: a large (effective)
// diameter or a far-away mass of vertices is exactly what a budgeted
// random walk cannot reach from a bad start.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace frontier {

/// Unreachable marker in distance vectors.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// BFS hop distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       VertexId source);

/// Largest finite distance from `source` (its eccentricity).
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, VertexId source);

/// Lower bound on the diameter by the standard double-sweep heuristic:
/// BFS from `seed`, then BFS again from the farthest vertex found.
[[nodiscard]] std::uint32_t pseudo_diameter(const Graph& g, VertexId seed = 0);

struct DistanceStats {
  double mean = 0.0;           ///< mean finite pairwise distance (sampled)
  std::uint32_t max_seen = 0;  ///< largest distance among sampled pairs
  double effective_diameter = 0.0;  ///< 90th percentile of sampled distances
  std::uint64_t reachable_pairs = 0;
  std::uint64_t sampled_sources = 0;
};

/// Distance summary via BFS from `sources` uniformly sampled vertices
/// (exact over the chosen sources). sources = 0 means every vertex
/// (exact all-pairs; O(|V|·|E|), small graphs only).
[[nodiscard]] DistanceStats distance_statistics(const Graph& g,
                                                std::size_t sources,
                                                Rng& rng);

}  // namespace frontier

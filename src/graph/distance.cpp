#include "graph/distance.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace frontier {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  if (source >= g.num_vertices()) {
    throw std::out_of_range("bfs_distances: source out of range");
  }
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    const std::uint32_t next = dist[v] + 1;
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = next;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, VertexId source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t worst = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) worst = std::max(worst, d);
  }
  return worst;
}

std::uint32_t pseudo_diameter(const Graph& g, VertexId seed) {
  if (g.num_vertices() == 0) return 0;
  const auto first = bfs_distances(g, seed);
  VertexId far = seed;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (first[v] != kUnreachable && first[v] > best) {
      best = first[v];
      far = v;
    }
  }
  return eccentricity(g, far);
}

DistanceStats distance_statistics(const Graph& g, std::size_t sources,
                                  Rng& rng) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  std::vector<VertexId> picks;
  if (sources == 0 || sources >= n) {
    picks.resize(n);
    for (VertexId v = 0; v < n; ++v) picks[v] = v;
  } else {
    picks.reserve(sources);
    for (std::size_t i = 0; i < sources; ++i) {
      picks.push_back(static_cast<VertexId>(uniform_index(rng, n)));
    }
  }

  DistanceStats stats;
  stats.sampled_sources = picks.size();
  std::vector<std::uint64_t> histogram;
  double total = 0.0;
  for (VertexId s : picks) {
    const auto dist = bfs_distances(g, s);
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t d = dist[v];
      if (d == kUnreachable || v == s) continue;
      if (d >= histogram.size()) histogram.resize(d + 1, 0);
      ++histogram[d];
      total += d;
      ++stats.reachable_pairs;
      stats.max_seen = std::max(stats.max_seen, d);
    }
  }
  if (stats.reachable_pairs == 0) return stats;
  stats.mean = total / static_cast<double>(stats.reachable_pairs);

  // Effective diameter: smallest d such that >= 90% of reachable sampled
  // pairs are within distance d (with linear interpolation).
  const double target = 0.9 * static_cast<double>(stats.reachable_pairs);
  std::uint64_t cum = 0;
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    const std::uint64_t prev = cum;
    cum += histogram[d];
    if (static_cast<double>(cum) >= target) {
      const double need = target - static_cast<double>(prev);
      const double frac =
          histogram[d] == 0 ? 0.0 : need / static_cast<double>(histogram[d]);
      stats.effective_diameter = static_cast<double>(d) - 1.0 + frac;
      break;
    }
  }
  return stats;
}

}  // namespace frontier

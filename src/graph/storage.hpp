// Backing storage for the CSR arrays of a Graph.
//
// A Graph never owns its arrays directly; it reads them through std::span
// views into a GraphStorage. Storage comes in two flavors:
//   * owned   — std::vector arrays produced by GraphBuilder or by the
//               stream-based readers (today's behavior),
//   * mapped  — a read-only mmap of a format-v2 binary snapshot, where the
//               spans point straight into the page cache. Loading is O(1)
//               in the graph size: no copy, no per-edge rebuild.
// Graphs share storage by shared_ptr, so copying a Graph is cheap and a
// mapped file stays alive exactly as long as some Graph views it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRONTIER_HAS_MMAP 1
#else
#define FRONTIER_HAS_MMAP 0
#endif

namespace frontier {

/// Move-only RAII wrapper over a read-only memory-mapped file.
/// On platforms without mmap, open() always throws.
class MmapFile {
 public:
  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  /// Maps `path` read-only. Throws IoError (see graph/io.hpp) on failure
  /// or when the platform has no mmap. Empty files map to {nullptr, 0}.
  [[nodiscard]] static MmapFile open(const std::string& path);

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return mapped_; }

 private:
  /// Unmaps (when mapped) and returns to the empty state.
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

/// Immutable backing store of one graph: the five CSR arrays plus the
/// directed-edge count, either owned or memory-mapped.
class GraphStorage {
 public:
  /// Owned-array payload; moved into the storage wholesale.
  struct Arrays {
    std::vector<EdgeIndex> offsets;            // |V|+1 (or empty graph: {0})
    std::vector<VertexId> neighbors;           // vol(V), sorted per vertex
    std::vector<EdgeDir> directions;           // parallel to neighbors
    std::vector<std::uint32_t> out_degree;     // |V|
    std::vector<std::uint32_t> in_degree;      // |V|
    std::uint64_t num_directed_edges = 0;
  };

  /// Span views into the backing arrays (owned or mapped).
  struct Views {
    std::span<const EdgeIndex> offsets;
    std::span<const VertexId> neighbors;
    std::span<const EdgeDir> directions;
    std::span<const std::uint32_t> out_degree;
    std::span<const std::uint32_t> in_degree;
    std::uint64_t num_directed_edges = 0;
  };

  [[nodiscard]] static std::shared_ptr<const GraphStorage> from_arrays(
      Arrays arrays);

  /// Wraps views pointing into `file`; the storage keeps the mapping alive.
  [[nodiscard]] static std::shared_ptr<const GraphStorage> from_mapped(
      MmapFile file, const Views& views);

  [[nodiscard]] const Views& views() const noexcept { return views_; }
  [[nodiscard]] bool is_memory_mapped() const noexcept { return mapped_; }

 private:
  GraphStorage() = default;

  Arrays arrays_;  // populated iff !mapped_
  MmapFile file_;  // populated iff mapped_
  Views views_;
  bool mapped_ = false;
};

}  // namespace frontier

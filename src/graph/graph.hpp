// Immutable CSR graph: the symmetric counterpart G of a directed graph G_d.
//
// The paper (Section 2) models a network as a labeled directed graph
// G_d = (V, E_d) and assumes the crawler can retrieve *both* incoming and
// outgoing edges of a queried vertex. Random walks therefore operate on the
// symmetric counterpart G = (V, E) with E = ∪_{(u,v)∈E_d} {(u,v),(v,u)},
// while estimators of directed quantities (in/out-degree distributions,
// directed assortativity) still need the original edge directions. Graph
// stores the symmetric adjacency in CSR form with a per-entry EdgeDir flag
// recording which directed edges exist in E_d.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "core/types.hpp"
#include "graph/storage.hpp"

namespace frontier {

class Graph {
 public:
  Graph() = default;

  /// Wraps a backing store (owned arrays or an mmap'd snapshot); the Graph
  /// reads through span views either way and shares the storage on copy.
  explicit Graph(std::shared_ptr<const GraphStorage> storage)
      : storage_(std::move(storage)) {
    const GraphStorage::Views& v = storage_->views();
    offsets_ = v.offsets;
    neighbors_ = v.neighbors;
    directions_ = v.directions;
    out_degree_ = v.out_degree;
    in_degree_ = v.in_degree;
    num_directed_edges_ = v.num_directed_edges;
  }

  /// Number of vertices |V|.
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of *directed* edges |E_d| in the original graph.
  [[nodiscard]] std::uint64_t num_directed_edges() const noexcept {
    return num_directed_edges_;
  }

  /// Number of ordered symmetric edges |E| (each undirected adjacency
  /// counted twice). Equals vol(V).
  [[nodiscard]] std::uint64_t num_symmetric_edges() const noexcept {
    return neighbors_.size();
  }

  /// Number of unordered adjacencies |E|/2.
  [[nodiscard]] std::uint64_t num_undirected_edges() const noexcept {
    return neighbors_.size() / 2;
  }

  /// Symmetric degree of v: deg(v) = |{u : (v,u) in E}|.
  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Out-degree of v in the original directed graph G_d.
  [[nodiscard]] std::uint32_t out_degree(VertexId v) const noexcept {
    return out_degree_[v];
  }

  /// In-degree of v in the original directed graph G_d.
  [[nodiscard]] std::uint32_t in_degree(VertexId v) const noexcept {
    return in_degree_[v];
  }

  /// Neighbors of v in G, sorted ascending.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Direction flags of the adjacency entries of v, parallel to neighbors(v).
  [[nodiscard]] std::span<const EdgeDir> directions(VertexId v) const noexcept {
    return {directions_.data() + offsets_[v],
            directions_.data() + offsets_[v + 1]};
  }

  /// k-th neighbor of v (unchecked).
  [[nodiscard]] VertexId neighbor(VertexId v, std::uint32_t k) const noexcept {
    return neighbors_[offsets_[v] + k];
  }

  /// Hints the cache to load v's adjacency range. The batched FS cursor
  /// calls this for the vertex a walker just moved to: that walker will
  /// not be stepped again for ~m steps, which is exactly the latency
  /// window a prefetch needs, so when the walker is next selected its
  /// neighbor list is already cached instead of costing a serial
  /// main-memory access — the dominant cost of a walk step on large
  /// graphs. No-op on compilers without the builtin.
  void prefetch_neighbors(VertexId v) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t b = offsets_[v];
    const std::uint64_t e = offsets_[v + 1];
    if (b == e) return;
    const VertexId* p = neighbors_.data();
    __builtin_prefetch(p + b, 0, 1);
    __builtin_prefetch(p + e - 1, 0, 1);
#else
    (void)v;
#endif
  }

  /// True iff (u,v) is in the symmetric edge set E. O(log deg(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const noexcept;

  /// True iff the *directed* edge (u,v) is in E_d. O(log deg(u)).
  [[nodiscard]] bool has_directed_edge(VertexId u, VertexId v) const noexcept;

  /// vol(S) of the whole vertex set: sum of symmetric degrees = |E|.
  [[nodiscard]] std::uint64_t volume() const noexcept {
    return neighbors_.size();
  }

  /// Average symmetric degree vol(V)/|V|; 0 for the empty graph.
  [[nodiscard]] double average_degree() const noexcept {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(volume()) /
                     static_cast<double>(num_vertices());
  }

  /// Maximum symmetric degree.
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Endpoints of the j-th symmetric edge slot, j in [0, volume()).
  /// Slots enumerate (v, neighbor(v,k)) in CSR order; uniform sampling over
  /// slots is uniform sampling over E.
  [[nodiscard]] Edge edge_at(EdgeIndex j) const noexcept;

  /// CSR offset array (size |V|+1); exposed for algorithms that stream the
  /// whole adjacency (metrics, IO).
  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept {
    return offsets_;
  }

  /// Whole CSR arrays, parallel to offsets(); exposed so the binary
  /// snapshot writer can emit them verbatim.
  [[nodiscard]] std::span<const VertexId> neighbor_array() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] std::span<const EdgeDir> direction_array() const noexcept {
    return directions_;
  }
  [[nodiscard]] std::span<const std::uint32_t> out_degree_array()
      const noexcept {
    return out_degree_;
  }
  [[nodiscard]] std::span<const std::uint32_t> in_degree_array()
      const noexcept {
    return in_degree_;
  }

  /// One-line human-readable summary ("|V|=..., |E|=..., d̄=...").
  [[nodiscard]] std::string summary() const;

  /// True when the CSR arrays are views into an mmap'd binary snapshot
  /// rather than owned vectors.
  [[nodiscard]] bool is_memory_mapped() const noexcept {
    return storage_ != nullptr && storage_->is_memory_mapped();
  }

 private:
  // Keeps the arrays (owned vectors or an mmap'd region) alive; the spans
  // below are cached views into it so the hot paths skip the indirection.
  std::shared_ptr<const GraphStorage> storage_;

  std::span<const EdgeIndex> offsets_;    // |V|+1
  std::span<const VertexId> neighbors_;   // vol(V), sorted per vertex
  std::span<const EdgeDir> directions_;   // parallel to neighbors_
  std::span<const std::uint32_t> out_degree_;
  std::span<const std::uint32_t> in_degree_;
  std::uint64_t num_directed_edges_ = 0;
};

}  // namespace frontier

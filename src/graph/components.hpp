// Connected components of the symmetric graph G, LCC extraction, and
// induced subgraphs. The paper evaluates both complete (disconnected)
// graphs and their largest connected components (Figures 4 vs 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

struct ComponentInfo {
  /// Component id per vertex, in [0, num_components).
  std::vector<std::uint32_t> component_of;
  /// Vertex count per component.
  std::vector<std::uint64_t> size;
  /// Volume (sum of symmetric degrees) per component.
  std::vector<std::uint64_t> volume;

  [[nodiscard]] std::size_t num_components() const noexcept {
    return size.size();
  }
  /// Id of the largest component (most vertices; ties -> smallest id).
  [[nodiscard]] std::uint32_t largest() const;
};

/// BFS-based connected components over the symmetric adjacency.
[[nodiscard]] ComponentInfo connected_components(const Graph& g);

/// True iff G is connected (and non-empty).
[[nodiscard]] bool is_connected(const Graph& g);

/// True iff the symmetric graph is bipartite (2-colorable). Random-walk
/// stationarity requires non-bipartite G (Section 4).
[[nodiscard]] bool is_bipartite(const Graph& g);

/// Result of an induced-subgraph extraction: the subgraph plus the mapping
/// from new ids back to the original ids.
struct Subgraph {
  Graph graph;
  std::vector<VertexId> original_id;  // new id -> old id
};

/// Subgraph induced by `vertices` (directed edges preserved, with their
/// original orientation). Duplicate ids are an error.
[[nodiscard]] Subgraph induced_subgraph(const Graph& g,
                                        std::span<const VertexId> vertices);

/// Subgraph induced by the largest connected component.
[[nodiscard]] Subgraph largest_connected_component(const Graph& g);

}  // namespace frontier

// Random and deterministic graph generators.
//
// These provide (a) the synthetic workloads of the paper's evaluation — the
// Barabási–Albert G_AB construction of Section 6.1 and the scaled surrogates
// of the crawled datasets (see experiments/datasets.hpp) — and (b) small
// structured graphs with analytically known characteristics used as ground
// truth in the test suite.
//
// Undirected graphs are modeled, as in the paper, as symmetric directed
// graphs (every adjacency carries EdgeDir::kBoth).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "random/rng.hpp"

namespace frontier {

// ----------------------------------------------------------------------
// Random models
// ----------------------------------------------------------------------

/// Barabási–Albert preferential attachment: starts from a clique of
/// `links_per_vertex`+1 vertices; each new vertex attaches `links_per_vertex`
/// edges to existing vertices chosen proportionally to degree (sampling with
/// the repeated-endpoint list trick; duplicate targets are resampled).
/// Undirected, connected, average degree ~ 2*links_per_vertex.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t links_per_vertex,
                                    Rng& rng);

/// Directed preferential-attachment variant for social-network surrogates:
/// each new vertex subscribes to `links_per_vertex` degree-preferential
/// targets (edge newcomer->target), and each subscription is reciprocated
/// with probability `reciprocity`. In-degrees are heavy-tailed.
[[nodiscard]] Graph directed_preferential(std::size_t n,
                                          std::size_t links_per_vertex,
                                          double reciprocity, Rng& rng);

/// Community-structured directed preferential attachment: `communities`
/// independently grown directed_preferential() blocks (sizes Zipf-skewed),
/// connected into one component by `bridges_per_community` random
/// inter-community undirected edges each (at least one, chained, so the
/// result is connected). Real social graphs are modular and mix slowly —
/// random walkers get trapped inside communities — which pure preferential
/// attachment (an expander) cannot reproduce. Used by the Flickr /
/// LiveJournal / YouTube surrogates.
[[nodiscard]] Graph community_preferential(std::size_t n,
                                           std::size_t links_per_vertex,
                                           double reciprocity,
                                           std::size_t communities,
                                           std::size_t bridges_per_community,
                                           Rng& rng);

/// Erdős–Rényi G(n, p): every unordered pair independently with prob p.
/// O(n + m) via geometric skipping.
[[nodiscard]] Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// Erdős–Rényi G(n, m): exactly m distinct undirected edges.
[[nodiscard]] Graph erdos_renyi_gnm(std::size_t n, std::uint64_t m, Rng& rng);

/// Configuration model over the given degree sequence (sum must be even).
/// Stub-matching; self-loops and parallel edges are erased, so realized
/// degrees can be slightly below the request for heavy-tailed inputs.
[[nodiscard]] Graph configuration_model(std::span<const std::uint32_t> degrees,
                                        Rng& rng);

/// Power-law degree sequence: P[deg = d] ∝ d^-alpha for d in [dmin, dmax],
/// adjusted so the sum is even.
[[nodiscard]] std::vector<std::uint32_t> power_law_degrees(std::size_t n,
                                                           double alpha,
                                                           std::uint32_t dmin,
                                                           std::uint32_t dmax,
                                                           Rng& rng);

/// Stochastic block model: `block_sizes[i]` vertices per block, edge
/// between u ∈ block i and v ∈ block j with probability probs[i][j]
/// (symmetric matrix, diagonal = within-block). Undirected. The canonical
/// model of community structure; the conductance tooling in analysis/ is
/// tested against it.
[[nodiscard]] Graph stochastic_block_model(
    std::span<const std::size_t> block_sizes,
    std::span<const std::vector<double>> probs, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta.
[[nodiscard]] Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                                   Rng& rng);

// ----------------------------------------------------------------------
// Deterministic graphs (known characteristics, used as test oracles)
// ----------------------------------------------------------------------

[[nodiscard]] Graph path_graph(std::size_t n);
[[nodiscard]] Graph cycle_graph(std::size_t n);
[[nodiscard]] Graph star_graph(std::size_t n);      ///< center 0, n-1 leaves
[[nodiscard]] Graph complete_graph(std::size_t n);
[[nodiscard]] Graph complete_bipartite(std::size_t a, std::size_t b);
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);

// ----------------------------------------------------------------------
// Combinators
// ----------------------------------------------------------------------

/// Disjoint union; vertex ids of graphs[i] are shifted by the total size of
/// the preceding graphs.
[[nodiscard]] Graph disjoint_union(std::span<const Graph> graphs);

/// The paper's G_AB construction (Section 6.1): places a and b side by side
/// and joins them with a single undirected edge between the minimum-degree
/// vertex of each part (ties broken by smallest id, as "ties are resolved
/// arbitrarily" in the paper).
[[nodiscard]] Graph join_by_single_edge(const Graph& a, const Graph& b);

}  // namespace frontier

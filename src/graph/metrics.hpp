// Exact graph characteristics — the ground truth every estimator is
// compared against (NMSE/CNMSE need the true θ and γ).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace frontier {

/// Which degree notion a distribution refers to.
enum class DegreeKind : std::uint8_t {
  kSymmetric,  ///< degree in G (the walkable symmetric graph)
  kIn,         ///< in-degree in the original directed graph G_d
  kOut,        ///< out-degree in G_d
};

[[nodiscard]] std::uint32_t degree_of(const Graph& g, VertexId v,
                                      DegreeKind kind) noexcept;

/// Exact degree distribution θ: theta[i] = fraction of vertices with the
/// given degree i. Indexed 0..max_degree.
[[nodiscard]] std::vector<double> degree_distribution(const Graph& g,
                                                      DegreeKind kind);

/// CCDF γ of a distribution: gamma[l] = Σ_{k>l} theta[k] (paper eq. 2's γ).
/// Same length as theta; gamma[max] == 0.
[[nodiscard]] std::vector<double> ccdf_from_pdf(
    const std::vector<double>& theta);

/// Exact fraction of vertices satisfying the predicate (θ_l of eq. 6 with
/// 1(l ∈ L_v(v)) = pred(v)).
[[nodiscard]] double exact_label_density(
    const Graph& g, const std::function<bool(VertexId)>& pred);

/// Exact directed degree assortative-mixing coefficient (Newman 2002,
/// eq. 25): correlation of (outdeg(u), indeg(v)) over directed edges
/// (u,v) ∈ E_d. Returns 0 when either marginal has zero variance (the
/// paper reports r = 0 for such graphs, e.g. Barabási–Albert parts of G_AB).
[[nodiscard]] double exact_assortativity(const Graph& g);

/// Number of common neighbors of u and v in G: the f(v,u) of Section 4.2.4.
[[nodiscard]] std::uint32_t shared_neighbors(const Graph& g, VertexId u,
                                             VertexId v) noexcept;

/// Exact number of triangles through each vertex (∆(v) of Section 4.2.4).
[[nodiscard]] std::vector<std::uint64_t> triangles_per_vertex(const Graph& g);

/// Exact global clustering coefficient (eq. 8): mean over vertices with
/// deg(v) >= 2 of ∆(v) / C(deg(v), 2). Returns 0 if no such vertex exists.
[[nodiscard]] double exact_global_clustering(const Graph& g);

/// Exact average-neighbor-degree curve knn(k): for each symmetric degree k,
/// the mean over edges (v,u) with deg(v) = k of deg(u). The standard
/// degree-correlation summary complementing the scalar assortativity; 0
/// where no vertex of degree k exists.
[[nodiscard]] std::vector<double> average_neighbor_degree(const Graph& g);

/// Row of the paper's Table 1.
struct GraphSummary {
  std::string name;
  std::uint64_t num_vertices = 0;
  std::uint64_t lcc_size = 0;
  std::uint64_t num_directed_edges = 0;
  double average_degree = 0.0;
  double wmax = 0.0;  ///< max degree / average degree
};

[[nodiscard]] GraphSummary summarize(const Graph& g, std::string name);

}  // namespace frontier

#include "graph/storage.hpp"

#include <utility>

#include "graph/io.hpp"

#if FRONTIER_HAS_MMAP
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace frontier {

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

MmapFile::~MmapFile() { reset(); }

void MmapFile::reset() noexcept {
#if FRONTIER_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MmapFile MmapFile::open(const std::string& path) {
#if FRONTIER_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("mmap: cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("mmap: fstat failed for " + path + ": " +
                  std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw IoError("mmap failed for " + path + ": " + std::strerror(err));
    }
    file.data_ = static_cast<const std::byte*>(addr);
  }
  // The mapping keeps the pages; the descriptor is no longer needed.
  ::close(fd);
  return file;
#else
  throw IoError("memory-mapped loading is unavailable on this platform: " +
                path);
#endif
}

std::shared_ptr<const GraphStorage> GraphStorage::from_arrays(Arrays arrays) {
  auto storage = std::shared_ptr<GraphStorage>(new GraphStorage());
  storage->arrays_ = std::move(arrays);
  storage->mapped_ = false;
  const Arrays& a = storage->arrays_;
  storage->views_ = Views{.offsets = a.offsets,
                          .neighbors = a.neighbors,
                          .directions = a.directions,
                          .out_degree = a.out_degree,
                          .in_degree = a.in_degree,
                          .num_directed_edges = a.num_directed_edges};
  return storage;
}

std::shared_ptr<const GraphStorage> GraphStorage::from_mapped(
    MmapFile file, const Views& views) {
  auto storage = std::shared_ptr<GraphStorage>(new GraphStorage());
  storage->file_ = std::move(file);
  storage->views_ = views;
  storage->mapped_ = true;
  return storage;
}

}  // namespace frontier

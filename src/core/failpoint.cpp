#include "core/failpoint.hpp"

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FRONTIER_FAILPOINT_HAVE_KILL 1
#else
#define FRONTIER_FAILPOINT_HAVE_KILL 0
#endif

namespace frontier::failpoint {
namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class TriggerKind : std::uint8_t {
  kAlways,
  kNthOnly,      // fire on exactly the Nth hit
  kNthOnwards,   // fire on the Nth hit and every later one
  kProbability,  // fire when the per-hit splitmix64 draw < threshold
};

struct SiteConfig {
  Fault fault = Fault::kNone;
  TriggerKind trigger = TriggerKind::kAlways;
  std::uint64_t nth = 0;          // for kNthOnly / kNthOnwards (1-based)
  std::uint64_t threshold = 0;    // for kProbability: p * 2^64, saturated
  std::uint64_t rng_state = 0;    // splitmix64 state, seeded per entry
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::size_t order = 0;          // configuration order, for stats()
};

// Keyed by site name; guarded by g_mutex. Sites are hit only on
// durability/serve paths (never per-event hot loops), and only when
// armed, so a mutex is fine.
std::mutex g_mutex;
std::unordered_map<std::string, SiteConfig>& table() {
  static std::unordered_map<std::string, SiteConfig> t;
  return t;
}

// splitmix64 — tiny, seedable, and not on the determinism lint's banned
// list (the crawl RNG must stay xorshift/pcg-family; this stream only
// decides when faults fire).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

[[noreturn]] void bad_spec(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("failpoint spec entry \"" + entry +
                              "\": " + why);
}

Fault parse_fault(const std::string& entry, std::string_view kind) {
  if (kind == "io-error") return Fault::kIoError;
  if (kind == "enospc") return Fault::kEnospc;
  if (kind == "short-write") return Fault::kShortWrite;
  if (kind == "eintr") return Fault::kEintr;
  if (kind == "abort") return Fault::kAbort;
  if (kind == "kill9") return Fault::kKill9;
  bad_spec(entry, "unknown fault kind \"" + std::string(kind) +
                      "\" (want io-error|enospc|short-write|eintr|abort|"
                      "kill9)");
}

std::uint64_t parse_u64(const std::string& entry, std::string_view text,
                        const char* what) {
  if (text.empty()) bad_spec(entry, std::string("empty ") + what);
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      bad_spec(entry, std::string("non-numeric ") + what + " \"" +
                          std::string(text) + "\"");
    }
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      bad_spec(entry, std::string(what) + " overflows");
    }
    value = value * 10 + digit;
  }
  return value;
}

// "@pP/S" — P is a decimal in [0,1] with up to 18 fractional digits,
// S a u64 seed. Converts P to a 2^64-scaled threshold without floating
// point so configuration is bit-exact everywhere.
void parse_probability(const std::string& entry, std::string_view text,
                       SiteConfig& cfg) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    bad_spec(entry, "probability trigger needs a seed: @pP/S");
  }
  std::string_view prob = text.substr(0, slash);
  std::string_view seed = text.substr(slash + 1);

  std::string_view whole = prob;
  std::string_view frac;
  if (auto dot = prob.find('.'); dot != std::string_view::npos) {
    whole = prob.substr(0, dot);
    frac = prob.substr(dot + 1);
  }
  std::uint64_t whole_v = parse_u64(entry, whole, "probability");
  if (whole_v > 1) bad_spec(entry, "probability must be in [0, 1]");
  if (frac.size() > 18) bad_spec(entry, "probability has too many digits");
  std::uint64_t frac_v = 0;
  std::uint64_t frac_scale = 1;
  for (char c : frac) {
    if (c < '0' || c > '9') {
      bad_spec(entry, "non-numeric probability \"" + std::string(prob) + "\"");
    }
    frac_v = frac_v * 10 + static_cast<std::uint64_t>(c - '0');
    frac_scale *= 10;
  }
  if (whole_v == 1 && frac_v != 0) {
    bad_spec(entry, "probability must be in [0, 1]");
  }
  cfg.trigger = TriggerKind::kProbability;
  if (whole_v == 1) {
    cfg.threshold = UINT64_MAX;  // always fires
  } else if (frac_v == 0) {
    cfg.threshold = 0;  // never fires
  } else {
    // threshold = frac_v / frac_scale * 2^64, via 128-bit arithmetic.
    unsigned __int128 t =
        (static_cast<unsigned __int128>(frac_v) << 64) / frac_scale;
    cfg.threshold = static_cast<std::uint64_t>(t);
  }
  cfg.rng_state = parse_u64(entry, seed, "seed");
}

void parse_trigger(const std::string& entry, std::string_view text,
                   SiteConfig& cfg) {
  if (text.empty()) bad_spec(entry, "empty trigger after '@'");
  if (text.front() == 'p') {
    parse_probability(entry, text.substr(1), cfg);
    return;
  }
  if (text.back() == '+') {
    cfg.trigger = TriggerKind::kNthOnwards;
    text.remove_suffix(1);
  } else {
    cfg.trigger = TriggerKind::kNthOnly;
  }
  cfg.nth = parse_u64(entry, text, "hit count");
  if (cfg.nth == 0) bad_spec(entry, "hit count must be >= 1");
}

// One `site=kind[@trigger]` entry.
std::pair<std::string, SiteConfig> parse_entry(const std::string& entry) {
  auto eq = entry.find('=');
  if (eq == std::string::npos) bad_spec(entry, "missing '='");
  std::string site = entry.substr(0, eq);
  if (site.empty()) bad_spec(entry, "empty site name");
  std::string rest = entry.substr(eq + 1);

  SiteConfig cfg;
  auto at = rest.find('@');
  std::string_view kind =
      at == std::string::npos ? std::string_view(rest)
                              : std::string_view(rest).substr(0, at);
  cfg.fault = parse_fault(entry, kind);
  if (at != std::string::npos) {
    parse_trigger(entry, std::string_view(rest).substr(at + 1), cfg);
  }
  return {std::move(site), cfg};
}

struct EnvInit {
  EnvInit() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — static init, single thread.
    const char* spec = std::getenv("FRONTIER_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    try {
      configure(spec);
    } catch (const std::invalid_argument& e) {
      // Static init has no caller to catch this; running with the
      // requested faults silently unarmed would be worse than dying.
      std::cerr << "bad environment: FRONTIER_FAILPOINTS: " << e.what()
                << "\n";
      std::exit(2);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void configure(const std::string& spec) {
  std::unordered_map<std::string, SiteConfig> parsed;
  std::size_t order = 0;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    auto end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    auto [site, cfg] = parse_entry(entry);
    cfg.order = order++;
    if (!parsed.emplace(std::move(site), cfg).second) {
      bad_spec(entry, "duplicate site");
    }
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  table() = std::move(parsed);
  detail::g_armed.store(!table().empty(), std::memory_order_relaxed);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  table().clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

Fault consume(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = table().find(std::string(site));
  if (it == table().end()) return Fault::kNone;
  SiteConfig& cfg = it->second;
  ++cfg.hits;
  bool fire = false;
  switch (cfg.trigger) {
    case TriggerKind::kAlways:
      fire = true;
      break;
    case TriggerKind::kNthOnly:
      fire = cfg.hits == cfg.nth;
      break;
    case TriggerKind::kNthOnwards:
      fire = cfg.hits >= cfg.nth;
      break;
    case TriggerKind::kProbability:
      fire = cfg.threshold == UINT64_MAX ||
             splitmix64(cfg.rng_state) < cfg.threshold;
      break;
  }
  if (!fire) return Fault::kNone;
  ++cfg.fires;
  return cfg.fault;
}

void enact(Fault fault, std::string_view site) {
  switch (fault) {
    case Fault::kIoError:
      throw IoError("failpoint " + std::string(site) + ": injected io error");
    case Fault::kEnospc:
      throw IoError("failpoint " + std::string(site) +
                    ": no space left on device (injected)");
    case Fault::kAbort:
      std::abort();
    case Fault::kKill9:
#if FRONTIER_FAILPOINT_HAVE_KILL
      ::kill(::getpid(), SIGKILL);
      // SIGKILL cannot be blocked; not reached. Fall through to abort
      // only on exotic platforms where kill somehow returned.
#endif
      std::abort();
    case Fault::kNone:
    case Fault::kShortWrite:
    case Fault::kEintr:
      break;  // cooperative kinds are the site's job (or nothing to do)
  }
}

void trip(std::string_view site) { enact(consume(site), site); }

Fault consume_enacted(std::string_view site) {
  Fault f = consume(site);
  enact(f, site);  // returns for kNone / kShortWrite / kEintr
  return f;
}

std::uint64_t hits(std::string_view site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = table().find(std::string(site));
  return it == table().end() ? 0 : it->second.hits;
}

std::vector<SiteStats> stats() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<SiteStats> out(table().size());
  for (const auto& [site, cfg] : table()) {
    out[cfg.order] = SiteStats{site, cfg.hits, cfg.fires};
  }
  return out;
}

}  // namespace frontier::failpoint

// IoError — the one exception type for malformed files and failed
// streams, thrown by every IO layer (graph snapshots, stream
// checkpoints, the durable-write helper, the serve spool) and mapped by
// the CLIs to a clean "io error: ..." exit. It lives in core so the
// bottom layers (durable writes, failpoints) can throw it without
// depending on graph/; graph/io.hpp re-exports it for the existing
// include sites.
#pragma once

#include <stdexcept>

namespace frontier {

/// Error for malformed files / failed streams.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace frontier

// libfrontier umbrella header — the public API.
//
// #include "core/frontier.hpp" pulls in the whole library:
//   * graph substrate (graph/, generators, components, metrics, io),
//   * samplers (sampling/): SingleRandomWalk, MultipleRandomWalks,
//     FrontierSampler, DistributedFrontierSampler, MetropolisHastingsWalk,
//     RandomVertexSampler, RandomEdgeSampler,
//   * streaming (stream/): SamplerCursor one-step iteration, online
//     EstimatorSinks, StreamEngine, checkpoint/resume,
//   * estimators (estimators/): label densities, degree distributions,
//     assortativity, global clustering,
//   * statistics (stats/): NMSE/CNMSE accumulators, analytic error models,
//   * exact chain analysis (analysis/): G^m chains, walker-count laws,
//     transient edge-sampling probabilities,
//   * experiment harness (experiments/): datasets, replication, printing.
#pragma once

#include "core/types.hpp"
#include "core/version.hpp"
#include "core/io_error.hpp"
#include "core/checksum.hpp"
#include "core/durable.hpp"
#include "core/failpoint.hpp"

#include "random/rng.hpp"
#include "random/alias_table.hpp"
#include "random/weighted_tree.hpp"

#include "graph/graph.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "graph/io.hpp"
#include "graph/distance.hpp"

#include "sampling/budget.hpp"
#include "sampling/walk.hpp"
#include "sampling/single_rw.hpp"
#include "sampling/multiple_rw.hpp"
#include "sampling/frontier_sampler.hpp"
#include "sampling/distributed_fs.hpp"
#include "sampling/metropolis.hpp"
#include "sampling/random_vertex.hpp"
#include "sampling/random_edge.hpp"
#include "sampling/random_walk_with_jumps.hpp"
#include "sampling/parallel_fs.hpp"
#include "sampling/coverage.hpp"

#include "stream/block.hpp"
#include "stream/cursor.hpp"
#include "stream/sampler_cursors.hpp"
#include "stream/sinks.hpp"
#include "stream/motif_sinks.hpp"
#include "stream/checkpoint.hpp"
#include "stream/engine.hpp"
#include "stream/spec.hpp"

#include "estimators/density.hpp"
#include "estimators/degree_distribution.hpp"
#include "estimators/assortativity.hpp"
#include "estimators/clustering.hpp"
#include "estimators/graph_moments.hpp"
#include "estimators/joint_degree.hpp"
#include "estimators/neighbor_degree.hpp"

#include "stats/accumulators.hpp"
#include "stats/bench_report.hpp"
#include "stats/error_metrics.hpp"
#include "stats/analytic.hpp"
#include "stats/bootstrap.hpp"

#include "cli/options.hpp"
#include "cli/load.hpp"

#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/server.hpp"

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/snapshot.hpp"
#include "obs/exporter.hpp"
#include "obs/crawl_metrics.hpp"

#include "analysis/dense_chain.hpp"
#include "analysis/cartesian_power.hpp"
#include "analysis/walker_counts.hpp"
#include "analysis/transient.hpp"
#include "analysis/spectral.hpp"
#include "analysis/conductance.hpp"
#include "analysis/motifs.hpp"

#include "experiments/config.hpp"
#include "experiments/datasets.hpp"
#include "experiments/replication_runner.hpp"
#include "experiments/replicator.hpp"
#include "experiments/printers.hpp"

// Strict environment-variable parsing, shared by every module that reads
// a knob (FS_* experiment scaling in experiments/config.*, FS_BLOCK in
// stream/block.*). Unset or empty variables mean "use the fallback";
// set-but-malformed values (unparsable text, trailing garbage, C99 hex
// floats, non-finite doubles, negative integers that strtoull would
// silently wrap) throw std::invalid_argument naming the variable — they
// are never silently replaced by defaults.
#pragma once

#include <cstdint>
#include <string>

namespace frontier {

[[nodiscard]] double env_double(const std::string& name, double fallback);
[[nodiscard]] std::uint64_t env_u64(const std::string& name,
                                    std::uint64_t fallback);

}  // namespace frontier

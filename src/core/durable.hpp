// Crash-safe file replacement.
//
// durable_write_file(path, bytes) guarantees that after it returns,
// `path` contains exactly `bytes` even across power loss, and that a
// crash at any interior moment leaves either the old content or the new
// content — never a torn mix. The protocol is the classic one:
//
//   1. write bytes to `path + ".tmp"`
//   2. fsync the tmp file        (data durable before it can be visible)
//   3. rename tmp over `path`    (atomic swap on POSIX)
//   4. fsync the parent directory (the rename itself durable)
//
// Every writer that replaces a file the system later reads back —
// stream checkpoints, the serve spool, estimate/report JSON — must go
// through here; frontier_lint's durable-file-replacement rule flags raw
// ofstream+rename swaps elsewhere. Failpoint sites (durable.open,
// durable.write, durable.fsync, durable.rename, durable.dirsync) cover
// each step so tests and the crash harness can kill or fail the process
// between any two of them.
//
// On non-POSIX builds the fsync steps degrade to flush-and-rename (no
// durability claim, same atomic-visibility behavior).
#pragma once

#include <string>
#include <string_view>

namespace frontier {

/// Atomically and durably replaces `path` with `bytes`. Throws IoError
/// (with path and errno text) if any step fails; on throw, `path` is
/// untouched (a stale `path + ".tmp"` may remain and is overwritten by
/// the next attempt).
void durable_write_file(const std::string& path, std::string_view bytes);

/// fsyncs the directory containing `path` (no-op on non-POSIX). Exposed
/// for writers that create files without replacing (e.g. spool removal
/// bookkeeping). Throws IoError on failure.
void fsync_parent_dir(const std::string& path);

}  // namespace frontier

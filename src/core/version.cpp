#include "core/version.hpp"

namespace frontier {

Version library_version() noexcept { return Version{1, 0, 0}; }

const char* library_version_string() noexcept { return "1.0.0"; }

}  // namespace frontier

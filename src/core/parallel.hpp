// Thread-count resolution and data-parallel building blocks shared by the
// graph ingestion path (parallel edge-list parsing, CSR construction) and
// the experiment replicator. Header-only: every helper degrades to the
// sequential algorithm when one worker is resolved, so results never depend
// on the thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <iterator>
#include <thread>
#include <vector>

namespace frontier {

/// Number of worker threads to use: `requested`, or hardware concurrency
/// when requested == 0 (at least 1).
[[nodiscard]] inline std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

/// Runs body(worker, begin, end) over a static block partition of
/// [0, total) on `workers` threads. Blocks are contiguous and in worker
/// order, so per-worker outputs can be concatenated deterministically.
/// An exception thrown by any worker is rethrown here (the lowest worker's
/// wins), matching the sequential path instead of std::terminate.
template <typename Body>
void parallel_for_ranges(std::size_t total, std::size_t workers,
                         const Body& body) {
  workers = std::max<std::size_t>(1, std::min(workers, total));
  if (workers == 1) {
    body(std::size_t{0}, std::size_t{0}, total);
    return;
  }
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = total * w / workers;
    const std::size_t end = total * (w + 1) / workers;
    pool.emplace_back([&body, &errors, w, begin, end] {
      try {
        body(w, begin, end);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Sorts [first, last) with `comp` using block sort + pairwise merges.
/// `threads` resolves like resolve_threads; small inputs fall back to
/// std::sort. Equivalent elements may land in any order (not stable),
/// exactly like std::sort.
template <typename It, typename Comp>
void parallel_sort(It first, It last, Comp comp, std::size_t threads = 0) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  // Below ~64k elements thread startup dominates; just sort in place.
  constexpr std::size_t kMinPerWorker = std::size_t{1} << 16;
  std::size_t workers = std::min(resolve_threads(threads),
                                 std::max<std::size_t>(n / kMinPerWorker, 1));
  if (workers <= 1) {
    std::sort(first, last, comp);
    return;
  }

  std::vector<std::size_t> bounds(workers + 1);
  for (std::size_t w = 0; w <= workers; ++w) bounds[w] = n * w / workers;

  parallel_for_ranges(workers, workers,
                      [&](std::size_t, std::size_t wb, std::size_t we) {
                        for (std::size_t w = wb; w < we; ++w) {
                          std::sort(first + bounds[w], first + bounds[w + 1],
                                    comp);
                        }
                      });

  // log2(workers) rounds of pairwise in-place merges, each round parallel
  // over the disjoint merge pairs.
  for (std::size_t width = 1; width < workers; width *= 2) {
    std::vector<std::size_t> lefts;
    for (std::size_t i = 0; i + width < workers; i += 2 * width) {
      lefts.push_back(i);
    }
    parallel_for_ranges(lefts.size(), lefts.size(),
                        [&](std::size_t, std::size_t pb, std::size_t pe) {
                          for (std::size_t p = pb; p < pe; ++p) {
                            const std::size_t i = lefts[p];
                            const std::size_t mid = i + width;
                            const std::size_t right =
                                std::min(i + 2 * width, workers);
                            std::inplace_merge(first + bounds[i],
                                               first + bounds[mid],
                                               first + bounds[right], comp);
                          }
                        });
  }
}

}  // namespace frontier

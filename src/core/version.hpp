// Library version metadata.
#pragma once

namespace frontier {

struct Version {
  int major;
  int minor;
  int patch;
};

/// Compile-time library version.
[[nodiscard]] Version library_version() noexcept;

/// "major.minor.patch".
[[nodiscard]] const char* library_version_string() noexcept;

}  // namespace frontier

// Deterministic fault injection — named sites compiled into the library.
//
// A *site* is a string-named point in a durability or serve path
// (e.g. "durable.rename", "serve.read") marked with one of the two
// macros below. A site does nothing until *activated* by a config
// string, either programmatically (failpoint::configure) or through the
// FRONTIER_FAILPOINTS environment variable at process start:
//
//     FRONTIER_FAILPOINTS='durable.fsync=kill9@2;serve.read=eintr@3'
//
// Config grammar (';'-separated entries, each `site=kind[@trigger]`):
//   kind     io-error | enospc | short-write | eintr | abort | kill9
//   trigger  (none)  fire on every hit
//            @N      fire on the Nth hit only (1-based)
//            @N+     fire on the Nth hit and every later one
//            @pP/S   fire with probability P (0..1), seeded by S —
//                    a per-site splitmix64 stream, so a given
//                    (site, seed) always fires on the same hit numbers
//
// Fault kinds split by who implements them:
//   * io-error / enospc  — FRONTIER_FAILPOINT throws IoError at the site.
//   * abort              — std::abort() (SIGABRT; exercises unwind-free
//                          death with core/sanitizer reports).
//   * kill9              — the process SIGKILLs itself: no handlers, no
//                          atexit, no flush — the `kill -9` the crash
//                          harness recovers from, selected at an exact
//                          deterministic moment.
//   * short-write / eintr — cooperative: FRONTIER_FAILPOINT ignores
//                          them; sites that can tear a write or fake an
//                          interrupted syscall use FRONTIER_FAILPOINT_KIND
//                          and implement the fault themselves (see
//                          core/durable.cpp and serve/server.cpp).
//
// Cost when inactive: FRONTIER_FAILPOINT compiles to one relaxed atomic
// load of a global flag and a never-taken branch; nothing is looked up,
// locked, or counted, and no RNG is consumed — crawls with the failpoint
// library linked in are bit-identical to crawls without it. Building
// with -DFRONTIER_FAILPOINTS=OFF removes the sites entirely.
//
// The site catalog and how to add a site live in docs/FAULT_INJECTION.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace frontier::failpoint {

enum class Fault : std::uint8_t {
  kNone,        ///< site not active at this hit
  kIoError,     ///< throw IoError at the site
  kEnospc,      ///< throw IoError styled as "no space left on device"
  kShortWrite,  ///< cooperative: the site tears/truncates its write
  kEintr,       ///< cooperative: the site fakes an EINTR syscall return
  kAbort,       ///< std::abort()
  kKill9,       ///< SIGKILL self — uncatchable, nothing runs after
};

/// Replaces the active configuration with `spec` (the grammar above; an
/// empty string deactivates everything, like clear()). Throws
/// std::invalid_argument naming the offending entry on malformed specs.
void configure(const std::string& spec);

/// Deactivates every site and resets all hit counters.
void clear();

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True iff any site is configured. The only cost a dormant site pays.
[[nodiscard]] inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Records a hit on `site` and returns the fault to apply at this hit
/// (kNone when the site is not configured or its trigger does not fire).
/// Hit counters advance only while armed, so dormant sites stay free.
[[nodiscard]] Fault consume(std::string_view site);

/// Applies a consumed fault: throws IoError for kIoError/kEnospc, dies
/// for kAbort/kKill9, returns for kNone and the cooperative kinds.
void enact(Fault fault, std::string_view site);

/// consume + enact — what FRONTIER_FAILPOINT expands to.
void trip(std::string_view site);

/// Hits recorded on `site` since the last configure()/clear().
[[nodiscard]] std::uint64_t hits(std::string_view site);

struct SiteStats {
  std::string site;
  std::uint64_t hits = 0;   ///< times the site was reached while armed
  std::uint64_t fires = 0;  ///< times a fault was actually injected
};

/// Stats for every configured site, in configuration order.
[[nodiscard]] std::vector<SiteStats> stats();

}  // namespace frontier::failpoint

// Site markers. FRONTIER_FAILPOINT is for sites where throwing/dying is
// the whole story; FRONTIER_FAILPOINT_KIND yields the Fault so the site
// can implement cooperative kinds (short-write, eintr) itself — it has
// already enact()ed the self-contained kinds.
#if !defined(FRONTIER_FAILPOINTS_ENABLED) || FRONTIER_FAILPOINTS_ENABLED
#define FRONTIER_FAILPOINT(site)                                 \
  do {                                                           \
    if (::frontier::failpoint::armed()) {                        \
      ::frontier::failpoint::trip(site);                         \
    }                                                            \
  } while (false)
#define FRONTIER_FAILPOINT_KIND(site)                            \
  (::frontier::failpoint::armed()                                \
       ? ::frontier::failpoint::consume_enacted(site)            \
       : ::frontier::failpoint::Fault::kNone)
#else
#define FRONTIER_FAILPOINT(site) \
  do {                           \
  } while (false)
#define FRONTIER_FAILPOINT_KIND(site) (::frontier::failpoint::Fault::kNone)
#endif

namespace frontier::failpoint {

/// consume() + enact() of the self-contained kinds, returning the
/// cooperative ones (kShortWrite/kEintr) — or kNone — to the site.
[[nodiscard]] Fault consume_enacted(std::string_view site);

}  // namespace frontier::failpoint

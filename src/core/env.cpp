#include "core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace frontier {
namespace {

/// The variable's value with surrounding whitespace stripped, or nullopt
/// semantics via empty-check at the call sites: unset and empty both mean
/// "use the fallback", anything else must parse completely.
const char* env_raw(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  return (raw == nullptr || *raw == '\0') ? nullptr : raw;
}

[[noreturn]] void parse_fail(const std::string& name, const char* raw,
                             const std::string& expected) {
  throw std::invalid_argument(name + "=\"" + raw + "\": expected " +
                              expected);
}

bool only_trailing_space(const char* p) {
  while (*p != '\0') {
    if (std::isspace(static_cast<unsigned char>(*p)) == 0) return false;
    ++p;
  }
  return true;
}

}  // namespace

double env_double(const std::string& name, double fallback) {
  const char* raw = env_raw(name);
  if (raw == nullptr) return fallback;
  // strtod accepts C99 hex floats ("0x12" == 18.0); that is never what an
  // FS_* knob means, and env_u64 rejects the same text, so be consistent.
  if (std::strpbrk(raw, "xX") != nullptr) {
    parse_fail(name, raw, "a decimal number");
  }
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || !only_trailing_space(end)) {
    parse_fail(name, raw, "a number");
  }
  if (!std::isfinite(value)) parse_fail(name, raw, "a finite number");
  return value;
}

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = env_raw(name);
  if (raw == nullptr) return fallback;
  // strtoull silently wraps negative input ("-3" becomes 2^64-3); reject
  // a leading minus sign explicitly.
  const char* first = raw;
  while (std::isspace(static_cast<unsigned char>(*first)) != 0) ++first;
  if (*first == '-') parse_fail(name, raw, "a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || !only_trailing_space(end)) {
    parse_fail(name, raw, "a non-negative integer");
  }
  if (errno == ERANGE) parse_fail(name, raw, "an integer below 2^64");
  return static_cast<std::uint64_t>(value);
}

}  // namespace frontier

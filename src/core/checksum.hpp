// CRC-64 (ECMA-182 polynomial, reflected — the xz/"CRC-64/XZ" variant)
// over a byte span. Used by the checkpoint trailer to reject torn or
// bit-flipped files before any field is parsed. Table-driven,
// byte-at-a-time: checkpoints are small (KBs), so simplicity wins over
// a sliced-by-8 kernel.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace frontier {

namespace detail {

inline constexpr std::uint64_t kCrc64Poly = 0xc96c5795d7870f42ULL;

inline constexpr std::array<std::uint64_t, 256> make_crc64_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? kCrc64Poly : 0);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint64_t, 256> kCrc64Table =
    make_crc64_table();

}  // namespace detail

/// CRC-64/XZ of `size` bytes at `data` (init and final xor 0xFF..FF).
[[nodiscard]] inline std::uint64_t crc64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~0ULL;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrc64Table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace frontier

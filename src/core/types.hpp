// Core value types shared by every libfrontier module.
#pragma once

#include <cstdint>
#include <limits>

namespace frontier {

/// Vertex identifier. Vertices of a Graph are always the dense range
/// [0, Graph::num_vertices()).
using VertexId = std::uint32_t;

/// Index of an edge slot inside the CSR adjacency arrays.
using EdgeIndex = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// A directed edge (u -> v). In the symmetrized graph G both (u,v) and
/// (v,u) are present; samplers record edges in the traversal direction.
struct Edge {
  VertexId u{kInvalidVertex};
  VertexId v{kInvalidVertex};

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Direction of an adjacency entry with respect to the *original* directed
/// graph G_d. The symmetric counterpart G stores one entry per unordered
/// neighbor pair direction; the flags record which directed edges exist.
enum class EdgeDir : std::uint8_t {
  kForward = 1,   ///< (u,v) in E_d only.
  kBackward = 2,  ///< (v,u) in E_d only.
  kBoth = 3,      ///< both (u,v) and (v,u) in E_d.
};

}  // namespace frontier

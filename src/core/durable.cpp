#include "core/durable.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/failpoint.hpp"
#include "core/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRONTIER_DURABLE_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FRONTIER_DURABLE_POSIX 0
#include <fstream>
#endif

namespace frontier {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError("durable write: " + what + " failed for " + path + ": " +
                std::strerror(errno));
}

std::string parent_of(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#if FRONTIER_DURABLE_POSIX

// RAII fd so every error path closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

// write(2) the whole buffer, retrying EINTR and partial writes. The
// durable.write failpoint can fake one EINTR return or tear the write
// short by one byte (the torn byte never survives: the tmp file is
// rewritten from scratch on every attempt, so short-write only matters
// when paired with a later kill9/abort — exactly the torn-file case the
// checkpoint trailer must catch).
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t off = 0;
  bool teared = false;
  while (off < size) {
    std::size_t want = size - off;
    switch (FRONTIER_FAILPOINT_KIND("durable.write")) {
      case failpoint::Fault::kEintr:
        errno = EINTR;
        continue;  // exactly what a real EINTR does: retry
      case failpoint::Fault::kShortWrite:
        if (!teared && want > 1) {
          want = 1;  // deliver one byte this round; loop resumes after
          teared = true;
        }
        break;
      default:
        break;
    }
    ssize_t n = ::write(fd, data + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) fail("fsync", path);
}

#endif  // FRONTIER_DURABLE_POSIX

}  // namespace

void fsync_parent_dir(const std::string& path) {
#if FRONTIER_DURABLE_POSIX
  FRONTIER_FAILPOINT("durable.dirsync");
  std::string dir = parent_of(path);
  Fd d;
  d.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (d.fd < 0) fail("open parent dir", dir);
  fsync_fd(d.fd, dir);
#else
  (void)path;
#endif
}

void durable_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
#if FRONTIER_DURABLE_POSIX
  {
    FRONTIER_FAILPOINT("durable.open");
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
    if (f.fd < 0) fail("open", tmp);
    write_all(f.fd, bytes.data(), bytes.size(), tmp);
    FRONTIER_FAILPOINT("durable.fsync");
    fsync_fd(f.fd, tmp);
  }
  FRONTIER_FAILPOINT("durable.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("rename", path);
  }
  fsync_parent_dir(path);
#else
  FRONTIER_FAILPOINT("durable.open");
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) fail("open", tmp);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    FRONTIER_FAILPOINT("durable.fsync");
    f.flush();
    if (!f) fail("write", tmp);
  }
  FRONTIER_FAILPOINT("durable.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("rename", path);
  }
#endif
}

}  // namespace frontier

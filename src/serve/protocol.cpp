#include "serve/protocol.hpp"

#include <cmath>
#include <initializer_list>

#include "stats/json.hpp"

namespace frontier::serve {
namespace {

constexpr std::string_view kContext = "serve protocol";

[[noreturn]] void bad_request(const std::string& why) {
  throw WireError("bad-request", why);
}

/// Exact-key check with optionals: every member must be declared, every
/// required key present, no duplicates. (stats/json's require_exact_keys
/// has no optional-key notion, and the wire protocol needs one.)
void check_keys(const json::Value& obj,
                std::initializer_list<std::string_view> required,
                std::initializer_list<std::string_view> optional) {
  for (const auto& [k, v] : obj.members) {
    (void)v;
    bool known = false;
    for (const std::string_view key : required) known = known || key == k;
    for (const std::string_view key : optional) known = known || key == k;
    if (!known) bad_request("unknown key \"" + k + "\"");
    std::size_t seen = 0;
    for (const auto& [k2, v2] : obj.members) {
      (void)v2;
      if (k2 == k) ++seen;
    }
    if (seen > 1) bad_request("duplicate key \"" + k + "\"");
  }
  for (const std::string_view key : required) {
    bool present = false;
    for (const auto& [k, v] : obj.members) {
      (void)v;
      present = present || k == key;
    }
    if (!present) bad_request("missing key \"" + std::string(key) + "\"");
  }
}

[[nodiscard]] bool has_key(const json::Value& obj, std::string_view key) {
  for (const auto& [k, v] : obj.members) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

[[nodiscard]] std::string get_identifier(const json::Value& obj,
                                         const std::string& key) {
  const std::string s = json::get_string(obj, key, kContext);
  if (!valid_identifier(s)) {
    bad_request("\"" + key +
                "\" must be 1-64 chars of [A-Za-z0-9._-] with no leading "
                "'.', got \"" +
                s + "\"");
  }
  return s;
}

}  // namespace

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kStep: return "step";
    case Op::kEstimates: return "estimates";
    case Op::kCheckpoint: return "checkpoint";
    case Op::kClose: return "close";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

bool valid_identifier(std::string_view s) noexcept {
  if (s.empty() || s.size() > 64 || s.front() == '.') return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Request parse_request(std::string_view line) {
  json::Value doc;
  try {
    doc = json::parse(line, kContext);
  } catch (const json::ParseError& e) {
    bad_request(e.what());
  }
  if (doc.kind != json::Value::Kind::kObject) {
    bad_request("request must be a JSON object");
  }

  Request req;
  std::string op;
  try {
    op = json::get_string(doc, "op", kContext);

    if (op == "open") {
      req.op = Op::kOpen;
      check_keys(doc, {"op", "session", "method", "budget", "seed"},
                 {"dimension", "motifs", "tenant", "resume"});
      req.session = get_identifier(doc, "session");
      req.tenant = has_key(doc, "tenant") ? get_identifier(doc, "tenant")
                                          : std::string("default");
      req.spec.method = json::get_string(doc, "method", kContext);
      req.spec.budget = json::get_number(doc, "budget", false, kContext);
      req.spec.seed = json::get_u64(doc, "seed", kContext);
      if (has_key(doc, "dimension")) {
        const std::uint64_t dim = json::get_u64(doc, "dimension", kContext);
        req.spec.dimension = static_cast<std::size_t>(dim);
      }
      if (has_key(doc, "motifs")) {
        req.spec.motifs = json::get_bool(doc, "motifs", kContext);
      }
      if (has_key(doc, "resume")) {
        req.resume = json::get_bool(doc, "resume", kContext);
      }
      try {
        req.spec.validate();
      } catch (const std::invalid_argument& e) {
        bad_request(e.what());
      }
    } else if (op == "step") {
      req.op = Op::kStep;
      check_keys(doc, {"op", "session", "events"}, {});
      req.session = get_identifier(doc, "session");
      req.events = json::get_u64(doc, "events", kContext);
      if (req.events == 0) bad_request("\"events\" must be at least 1");
    } else if (op == "estimates" || op == "checkpoint" || op == "close") {
      req.op = op == "estimates"  ? Op::kEstimates
               : op == "checkpoint" ? Op::kCheckpoint
                                    : Op::kClose;
      check_keys(doc, {"op", "session"}, {});
      req.session = get_identifier(doc, "session");
    } else if (op == "stats" || op == "shutdown") {
      req.op = op == "stats" ? Op::kStats : Op::kShutdown;
      check_keys(doc, {"op"}, {});
    } else {
      bad_request("unknown op \"" + op + "\"");
    }
  } catch (const json::ParseError& e) {
    bad_request(e.what());
  }
  return req;
}

std::string error_response(std::string_view code, std::string_view message) {
  return "{\"ok\":false,\"error\":" + json::quote(code) +
         ",\"message\":" + json::quote(message) + "}";
}

std::string ok_response(Op op, std::string_view fields) {
  std::string out = "{\"ok\":true,\"op\":" + json::quote(op_name(op));
  if (!fields.empty()) {
    out += ',';
    out += fields;
  }
  out += '}';
  return out;
}

}  // namespace frontier::serve

// frontier_serve wire protocol v1 — newline-delimited JSON.
//
// One request object per line, one response object per line, always in
// order. The parser has the same parse-or-throw discipline as the
// BenchReport schema (both sit on stats/json.hpp): unknown keys, missing
// keys, duplicate keys, wrong types, malformed numbers and out-of-range
// values are all rejected with a structured error response — a request
// byte sequence can be refused, never crash the daemon or corrupt a
// session.
//
// Requests (required keys; [optional]):
//   {"op":"open","session":S,"method":M,"budget":B,"seed":N,
//    ["dimension":N,"motifs":bool,"tenant":S,"resume":bool]}
//   {"op":"step","session":S,"events":N}
//   {"op":"estimates","session":S}
//   {"op":"checkpoint","session":S}
//   {"op":"close","session":S}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses:
//   {"ok":true,"op":...,...}                      — op-specific fields
//   {"ok":false,"error":CODE,"message":TEXT}      — structured failure
//
// Error codes: bad-request, line-too-long, unknown-session,
// duplicate-session, session-busy, over-quota, bad-checkpoint, io-error,
// shutting-down. The full specification lives in docs/SERVER.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "stream/spec.hpp"

namespace frontier::serve {

inline constexpr int kProtocolVersion = 1;

/// A request the server refuses. `code()` is the machine-readable error
/// code of the response; what() is the human-readable message.
class WireError : public std::runtime_error {
 public:
  WireError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

enum class Op : std::uint8_t {
  kOpen,
  kStep,
  kEstimates,
  kCheckpoint,
  kClose,
  kStats,
  kShutdown,
};

[[nodiscard]] std::string_view op_name(Op op) noexcept;

struct Request {
  Op op = Op::kStats;
  std::string session;       ///< open/step/estimates/checkpoint/close
  std::string tenant;        ///< open; defaults to "default"
  CrawlSpec spec;            ///< open
  bool resume = false;       ///< open: restore from the spool checkpoint
  std::uint64_t events = 0;  ///< step
};

/// Parses and validates one request line. Throws WireError("bad-request")
/// on any schema violation; the message pinpoints the offending key.
[[nodiscard]] Request parse_request(std::string_view line);

/// Session/tenant ids: 1-64 chars of [A-Za-z0-9._-], no leading '.'
/// (ids name spool checkpoint files, so nothing path-like is accepted).
[[nodiscard]] bool valid_identifier(std::string_view s) noexcept;

// ---------------------------------------------------------------------------
// Response builders (no trailing newline; the transport appends it).

/// {"ok":false,"error":CODE,"message":TEXT}
[[nodiscard]] std::string error_response(std::string_view code,
                                         std::string_view message);

/// {"ok":true,"op":OP} or {"ok":true,"op":OP,<fields>} — `fields` is a
/// pre-rendered comma-joined field list.
[[nodiscard]] std::string ok_response(Op op, std::string_view fields = {});

}  // namespace frontier::serve

#include "serve/server.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "core/failpoint.hpp"
#include "graph/io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRONTIER_HAS_SOCKETS 1
#else
#define FRONTIER_HAS_SOCKETS 0
#endif

#if FRONTIER_HAS_SOCKETS
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "stats/json.hpp"

namespace frontier::serve {

ServeCore::ServeCore(Graph graph, ServeLimits limits, std::string spool_dir,
                     Clock::time_point now, MetricsRegistry* metrics)
    : registry_(std::move(graph), limits, std::move(spool_dir)),
      start_(now) {
  if (metrics != nullptr) {
    m_requests_ = metrics->counter("serve.requests");
    m_errors_ = metrics->counter("serve.errors");
    m_events_ = metrics->counter("serve.events_pumped");
    m_evictions_ = metrics->counter("serve.evictions");
    m_spool_errors_ = metrics->counter("serve.spool_errors");
    m_active_ = metrics->gauge("serve.active_sessions");
    m_queue_ = metrics->gauge("serve.step_queue_depth");
    m_request_ns_ = metrics->histogram("serve.request_ns");
  }
}

void ServeCore::update_gauges() {
  m_active_.set(static_cast<double>(registry_.active()));
  m_queue_.set(static_cast<double>(jobs_.size()));
  const std::uint64_t se = registry_.spool_errors();
  if (se > spool_errors_seen_) {
    m_spool_errors_.add(se - spool_errors_seen_);
    spool_errors_seen_ = se;
  }
}

std::string ServeCore::step_response(const Session& s,
                                     std::uint64_t stepped) const {
  return ok_response(
      Op::kStep,
      "\"session\":" + json::quote(s.id()) +
          ",\"stepped\":" + std::to_string(stepped) +
          ",\"events\":" + std::to_string(s.engine().events()) +
          ",\"cost\":" + json::number(s.engine().cursor().cost()) +
          ",\"done\":" + json::boolean(s.engine().finished()));
}

ServeCore::Outcome ServeCore::handle_line(std::uint64_t conn,
                                          std::string_view line,
                                          Clock::time_point now) {
  const ScopeTimer timer(m_request_ns_);
  ++requests_;
  m_requests_.add();
  Outcome out;
  try {
    if (line.size() > registry_.limits().max_line_bytes) {
      throw WireError("line-too-long",
                      "request line exceeds max-line-bytes (" +
                          std::to_string(registry_.limits().max_line_bytes) +
                          ")");
    }
    if (draining_) {
      throw WireError("shutting-down", "the server is draining");
    }
    const Request req = parse_request(line);
    out.response = dispatch(conn, req, now, out.deferred, out.shutdown);
  } catch (const WireError& e) {
    ++errors_;
    m_errors_.add();
    out.response = error_response(e.code(), e.what());
  } catch (const IoError& e) {
    ++errors_;
    m_errors_.add();
    out.response = error_response("io-error", e.what());
  } catch (const std::exception& e) {
    // Defensive: nothing below should leak a bare exception, but a
    // request must never take the daemon down.
    ++errors_;
    m_errors_.add();
    out.response = error_response("internal", e.what());
  }
  update_gauges();
  return out;
}

std::string ServeCore::dispatch(std::uint64_t conn, const Request& req,
                                Clock::time_point now, bool& deferred,
                                bool& shutdown) {
  switch (req.op) {
    case Op::kOpen: {
      Session& s =
          registry_.open(req.session, req.tenant, req.spec, req.resume, now);
      return ok_response(
          Op::kOpen,
          "\"session\":" + json::quote(s.id()) +
              ",\"tenant\":" + json::quote(s.tenant()) +
              ",\"resumed\":" + json::boolean(req.resume) +
              ",\"events\":" + std::to_string(s.engine().events()) +
              ",\"dimension\":" + std::to_string(s.spec().dimension));
    }
    case Op::kStep: {
      Session& s = registry_.checked(req.session);
      if (req.events > registry_.limits().max_step_events) {
        throw WireError(
            "over-quota",
            "step exceeds max-step-events (" +
                std::to_string(registry_.limits().max_step_events) + ")");
      }
      s.touch(now);
      if (s.engine().finished()) return step_response(s, 0);
      s.set_busy(true);
      jobs_.push_back(Job{conn, s.id(), req.events, 0});
      deferred = true;
      return {};
    }
    case Op::kEstimates: {
      Session& s = registry_.checked(req.session);
      s.touch(now);
      return ok_response(Op::kEstimates,
                         "\"session\":" + json::quote(s.id()) + "," +
                             estimates_fields(s.spec(), s.engine()));
    }
    case Op::kCheckpoint: {
      Session& s = registry_.checked(req.session);
      s.touch(now);
      const std::string path = registry_.checkpoint(s, now);
      return ok_response(
          Op::kCheckpoint,
          "\"session\":" + json::quote(s.id()) +
              ",\"path\":" + json::quote(path) +
              ",\"events\":" + std::to_string(s.engine().events()));
    }
    case Op::kClose: {
      Session& s = registry_.checked(req.session);
      const std::uint64_t events = s.engine().events();
      registry_.close(req.session);
      return ok_response(Op::kClose,
                         "\"session\":" + json::quote(req.session) +
                             ",\"events\":" + std::to_string(events));
    }
    case Op::kStats: {
      std::string sessions = "[";
      for (const Session* s : registry_.list()) {
        if (sessions.size() > 1) sessions += ',';
        sessions += "{\"session\":" + json::quote(s->id()) +
                    ",\"tenant\":" + json::quote(s->tenant()) +
                    ",\"method\":" + json::quote(s->spec().method) +
                    ",\"events\":" + std::to_string(s->engine().events()) +
                    ",\"busy\":" + json::boolean(s->busy()) +
                    ",\"done\":" + json::boolean(s->engine().finished()) +
                    "}";
      }
      sessions += ']';
      return ok_response(
          Op::kStats,
          "\"protocol\":" + std::to_string(kProtocolVersion) +
              ",\"uptime_seconds\":" +
              json::number(
                  std::chrono::duration<double>(now - start_).count()) +
              ",\"active_sessions\":" + std::to_string(registry_.active()) +
              ",\"opened\":" + std::to_string(registry_.opened()) +
              ",\"closed\":" + std::to_string(registry_.closed()) +
              ",\"evictions\":" + std::to_string(registry_.evictions()) +
              ",\"spool_errors\":" + std::to_string(registry_.spool_errors()) +
              ",\"spool_drops\":" + std::to_string(registry_.spool_drops()) +
              ",\"requests\":" + std::to_string(requests_) +
              ",\"errors\":" + std::to_string(errors_) +
              ",\"events_pumped\":" + std::to_string(events_pumped_) +
              ",\"step_queue_depth\":" + std::to_string(jobs_.size()) +
              ",\"sessions\":" + sessions);
    }
    case Op::kShutdown: {
      const std::size_t drained = drain(now);
      shutdown = true;
      return ok_response(Op::kShutdown,
                         "\"drained\":" + std::to_string(drained));
    }
  }
  throw WireError("bad-request", "unhandled op");
}

std::optional<ServeCore::Completed> ServeCore::pump_slice(
    Clock::time_point now) {
  if (jobs_.empty()) return std::nullopt;
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  Session* s = registry_.find(job.session);
  if (s == nullptr) {
    // Unreachable by construction (busy sessions cannot be closed or
    // evicted), but a scheduler must not crash on a stale job.
    update_gauges();
    return Completed{job.conn,
                     error_response("unknown-session",
                                    "session \"" + job.session +
                                        "\" vanished mid-step")};
  }
  // Crash-harness site: a kill9/abort here dies mid-crawl between two
  // slices (self-contained faults only — an injected throw would
  // propagate out of the event loop).
  FRONTIER_FAILPOINT("serve.pump");
  const std::uint64_t want =
      std::min(job.remaining, registry_.limits().slice_events);
  const std::uint64_t got = s->engine().pump(want);
  job.stepped += got;
  job.remaining = got < want ? 0 : job.remaining - want;
  events_pumped_ += got;
  m_events_.add(got);
  s->touch(now);
  if (job.remaining == 0 || s->engine().finished()) {
    s->set_busy(false);
    Completed done{job.conn, step_response(*s, job.stepped)};
    update_gauges();
    return done;
  }
  jobs_.push_back(std::move(job));
  update_gauges();
  return std::nullopt;
}

void ServeCore::cancel_connection(std::uint64_t conn) {
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->conn == conn) {
      if (Session* s = registry_.find(it->session); s != nullptr) {
        s->set_busy(false);
      }
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  update_gauges();
}

std::size_t ServeCore::drain(Clock::time_point now) {
  for (const Job& job : jobs_) {
    if (Session* s = registry_.find(job.session); s != nullptr) {
      s->set_busy(false);
    }
  }
  jobs_.clear();
  draining_ = true;
  const std::size_t drained = registry_.drain_all(now);
  update_gauges();
  return drained;
}

std::size_t ServeCore::evict_idle(Clock::time_point now) {
  const std::size_t evicted = registry_.evict_idle(now);
  if (evicted > 0) {
    m_evictions_.add(evicted);
    update_gauges();
  }
  return evicted;
}

// ---------------------------------------------------------------------------
// SocketServer

struct SocketServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;
  std::string out;
  bool closing = false;  ///< close once `out` has flushed
};

#if FRONTIER_HAS_SOCKETS

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void socket_fail(const std::string& what) {
  throw IoError("serve socket: " + what + ": " + std::strerror(errno));
}

}  // namespace

SocketServer::SocketServer(ServeCore& core, SocketConfig config,
                           std::ostream* log)
    : core_(core), config_(std::move(config)), log_(log) {
  const bool want_unix = !config_.unix_socket.empty();
  const bool want_tcp = config_.tcp_port != 0;
  if (want_unix == want_tcp) {
    throw IoError(
        "serve socket: exactly one of --socket and --port is required");
  }
  if (want_unix) {
    if (config_.unix_socket.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw IoError("serve socket: unix path too long: " +
                    config_.unix_socket);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) socket_fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The daemon owns the path: remove a stale socket from a previous run.
    (void)::unlink(config_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      socket_fail("bind " + config_.unix_socket);
    }
    address_ = config_.unix_socket;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) socket_fail("socket");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      socket_fail("bind 127.0.0.1:" + std::to_string(config_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &len);
    address_ = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) socket_fail("listen");
  set_nonblocking(listen_fd_);
  if (log_ != nullptr) {
    *log_ << "frontier_serve: listening on " << address_ << "\n";
  }
}

SocketServer::~SocketServer() {
  for (Conn& c : conns_) {
    if (c.fd >= 0) (void)::close(c.fd);
  }
  if (listen_fd_ >= 0) (void)::close(listen_fd_);
  if (!config_.unix_socket.empty()) {
    (void)::unlink(config_.unix_socket.c_str());
  }
}

void SocketServer::accept_new() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN and friends: nothing more to accept
    set_nonblocking(fd);
    Conn c;
    c.fd = fd;
    c.id = next_conn_id_++;
    conns_.push_back(std::move(c));
  }
}

bool SocketServer::service_input(Conn& c) {
  char buf[4096];
  while (true) {
    // serve.read=eintr@N fakes an interrupted read to exercise the retry
    // (use an Nth-hit trigger — `always` would spin here forever).
    if (FRONTIER_FAILPOINT_KIND("serve.read") ==
        failpoint::Fault::kEintr) {
      errno = EINTR;
      continue;
    }
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    c.in.append(buf, static_cast<std::size_t>(n));
  }

  const std::uint64_t max_line = core_.registry().limits().max_line_bytes;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = c.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(c.in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const auto now = ServeCore::Clock::now();
    const ServeCore::Outcome out = core_.handle_line(c.id, line, now);
    if (!out.response.empty()) {
      c.out += out.response;
      c.out += '\n';
    }
    if (out.shutdown) shutdown_requested_ = true;
    start = nl + 1;
  }
  c.in.erase(0, start);
  if (c.in.size() > max_line) {
    // An unterminated over-long line is a protocol violation: answer
    // once, then hang up (the rest of the line could be gigabytes).
    c.out += error_response("line-too-long",
                            "request line exceeds max-line-bytes (" +
                                std::to_string(max_line) + ")");
    c.out += '\n';
    c.in.clear();
    c.closing = true;
  }
  return true;
}

bool SocketServer::flush_output(Conn& c) {
  while (!c.out.empty()) {
    std::size_t want = c.out.size();
    // serve.write faults: eintr fakes an interrupted write (Nth-hit
    // trigger, see serve.read); short-write delivers one byte so the
    // partial-write buffering must carry the rest to the next round.
    switch (FRONTIER_FAILPOINT_KIND("serve.write")) {
      case failpoint::Fault::kEintr:
        errno = EINTR;
        continue;
      case failpoint::Fault::kShortWrite:
        want = 1;
        break;
      default:
        break;
    }
    const ssize_t n = ::write(c.fd, c.out.data(), want);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    c.out.erase(0, static_cast<std::size_t>(n));
  }
  return !c.closing;
}

void SocketServer::close_conn(std::size_t index) {
  core_.cancel_connection(conns_[index].id);
  (void)::close(conns_[index].fd);
  conns_.erase(conns_.begin() +
               static_cast<std::ptrdiff_t>(index));
}

std::size_t SocketServer::run(const volatile std::sig_atomic_t* stop) {
  std::vector<pollfd> fds;
  while ((stop == nullptr || *stop == 0) && !shutdown_requested_) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) {
      short events = POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
    }
    // Runnable step jobs keep the loop hot; otherwise block briefly so
    // SIGTERM and idle eviction are noticed promptly.
    const int timeout_ms = core_.has_runnable() ? 0 : 250;
    int ready;
    if (FRONTIER_FAILPOINT_KIND("serve.poll") ==
        failpoint::Fault::kEintr) {
      errno = EINTR;  // fake a signal landing mid-poll
      ready = -1;
    } else {
      ready = ::poll(fds.data(), fds.size(), timeout_ms);
    }
    if (ready < 0) {
      if (errno != EINTR) socket_fail("poll");
      continue;  // interrupted: re-check the stop flag, rebuild, re-poll
    }

    // Only the connections that existed when `fds` was built have a
    // pollfd entry; accept_new() may append more, which get polled on
    // the next iteration.
    const std::size_t polled = fds.size() - 1;
    if (ready > 0 && (fds[0].revents & POLLIN) != 0) accept_new();
    for (std::size_t i = polled; i-- > 0;) {
      const short re = ready > 0 ? fds[i + 1].revents : 0;
      bool alive = true;
      if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (re & POLLIN) != 0) alive = service_input(conns_[i]);
      if (alive && !conns_[i].out.empty()) alive = flush_output(conns_[i]);
      if (!alive) close_conn(i);
    }

    // A few slices per iteration: enough to keep sessions moving, small
    // enough that new connections and responses stay interactive.
    const auto now = ServeCore::Clock::now();
    for (int i = 0; i < 4 && core_.has_runnable(); ++i) {
      if (auto done = core_.pump_slice(now)) {
        for (Conn& c : conns_) {
          if (c.id == done->conn) {
            c.out += done->response;
            c.out += '\n';
            (void)flush_output(c);
            break;
          }
        }
      }
    }
    (void)core_.evict_idle(now);
  }

  const std::size_t drained = core_.drain(ServeCore::Clock::now());
  // Best-effort flush of in-flight responses (the shutdown ack).
  for (Conn& c : conns_) (void)flush_output(c);
  if (log_ != nullptr) {
    *log_ << "frontier_serve: drained " << drained << " session"
          << (drained == 1 ? "" : "s") << " to "
          << core_.registry().spool_dir() << "\n";
  }
  return drained;
}

#else  // !FRONTIER_HAS_SOCKETS

SocketServer::SocketServer(ServeCore& core, SocketConfig config,
                           std::ostream* log)
    : core_(core), config_(std::move(config)), log_(log) {
  throw IoError("serve socket: no socket support on this platform");
}

SocketServer::~SocketServer() = default;

std::size_t SocketServer::run(const volatile std::sig_atomic_t*) {
  return 0;
}

void SocketServer::accept_new() {}
bool SocketServer::service_input(Conn&) { return false; }
bool SocketServer::flush_output(Conn&) { return false; }
void SocketServer::close_conn(std::size_t) {}

#endif  // FRONTIER_HAS_SOCKETS

}  // namespace frontier::serve

// The frontier_serve daemon: request dispatch, the sliced scheduler, and
// the poll()-based socket front end.
//
// ServeCore is transport-independent — it maps request lines to response
// lines over a SessionRegistry. Cheap ops (open/estimates/checkpoint/
// close/stats) answer synchronously; `step` requests become pending jobs
// that pump_slice() advances in fixed-budget slices, round-robin across
// sessions, so one million-event step cannot starve every other client
// (StreamEngine::pump honors exact event counts, which is what makes the
// slicing invisible to the crawl). tests/test_serve_protocol.cpp drives
// ServeCore directly; no sockets, no clocks it does not receive as
// arguments.
//
// SocketServer is the thin transport: one thread, one poll() loop over a
// Unix or loopback-TCP listening socket, per-connection line buffers
// with the max_line_bytes cap enforced before parsing, and graceful
// drain — on SIGTERM (caller-owned flag) or an accepted shutdown
// request, every session is checkpointed to the spool before exit.
//
// Observability: request/error/event counters, request-latency
// histograms and an active-session gauge through MetricsRegistry.
// Telemetry observes only — a served crawl's estimates and checkpoints
// are bit-identical to an offline run of the same spec (CI's serve-smoke
// job cmp's them byte for byte).
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/session.hpp"

namespace frontier::serve {

class ServeCore {
 public:
  using Clock = Session::Clock;

  /// `metrics` may be nullptr (tests); `now` anchors uptime_seconds.
  ServeCore(Graph graph, ServeLimits limits, std::string spool_dir,
            Clock::time_point now, MetricsRegistry* metrics = nullptr);

  struct Outcome {
    std::string response;  ///< empty iff deferred
    bool deferred = false;  ///< a step job was queued; response comes later
    bool shutdown = false;  ///< drain accepted; stop serving after replying
  };

  /// Handles one request line from connection `conn`. Never throws on
  /// request bytes — every failure becomes an {"ok":false,...} response.
  Outcome handle_line(std::uint64_t conn, std::string_view line,
                      Clock::time_point now);

  [[nodiscard]] bool has_runnable() const noexcept { return !jobs_.empty(); }

  struct Completed {
    std::uint64_t conn = 0;
    std::string response;
  };

  /// Advances the front job by at most limits().slice_events events and
  /// rotates it to the back; returns the finished step response when the
  /// job completed. No-op (nullopt) when nothing is runnable.
  std::optional<Completed> pump_slice(Clock::time_point now);

  /// Drops every pending job of a disconnected client. Progress already
  /// pumped stays (the session keeps its events); only the response is
  /// unroutable.
  void cancel_connection(std::uint64_t conn);

  /// Cancels all jobs and checkpoints every session. Returns the number
  /// of sessions checkpointed. Safe to call twice (drain is idempotent).
  std::size_t drain(Clock::time_point now);

  std::size_t evict_idle(Clock::time_point now);

  [[nodiscard]] SessionRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const SessionRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  struct Job {
    std::uint64_t conn = 0;
    std::string session;
    std::uint64_t remaining = 0;
    std::uint64_t stepped = 0;
  };

  std::string dispatch(std::uint64_t conn, const Request& req,
                       Clock::time_point now, bool& deferred, bool& shutdown);
  std::string step_response(const Session& s, std::uint64_t stepped) const;
  void update_gauges();

  SessionRegistry registry_;
  Clock::time_point start_;
  std::deque<Job> jobs_;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t events_pumped_ = 0;
  bool draining_ = false;

  std::uint64_t spool_errors_seen_ = 0;

  Counter m_requests_;
  Counter m_errors_;
  Counter m_events_;
  Counter m_evictions_;
  Counter m_spool_errors_;
  Gauge m_active_;
  Gauge m_queue_;
  Histogram m_request_ns_;
};

/// Transport configuration: exactly one of `unix_socket` / `tcp_port`.
/// TCP binds to 127.0.0.1 only — the daemon has no authentication; put a
/// real proxy in front for anything beyond localhost.
struct SocketConfig {
  std::string unix_socket;
  int tcp_port = 0;
  int backlog = 16;
};

class SocketServer {
 public:
  /// Binds and listens; throws IoError on any socket failure. `log` may
  /// be nullptr for silence (the daemon passes std::cerr).
  SocketServer(ServeCore& core, SocketConfig config, std::ostream* log);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Serves until *stop becomes nonzero (signal handler) or a shutdown
  /// request is accepted, then drains (checkpoints every session) and
  /// returns the number of sessions drained.
  std::size_t run(const volatile std::sig_atomic_t* stop);

  [[nodiscard]] const std::string& address() const noexcept {
    return address_;
  }

 private:
  struct Conn;
  void accept_new();
  bool service_input(Conn& c);   // false: close connection
  bool flush_output(Conn& c);    // false: close connection
  void close_conn(std::size_t index);

  ServeCore& core_;
  SocketConfig config_;
  std::ostream* log_;
  int listen_fd_ = -1;
  std::string address_;
  std::vector<Conn> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool shutdown_requested_ = false;
};

}  // namespace frontier::serve

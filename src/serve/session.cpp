#include "serve/session.hpp"

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "core/failpoint.hpp"
#include "graph/io.hpp"

namespace frontier::serve {

void ServeLimits::validate() const {
  if (max_sessions == 0) {
    throw std::invalid_argument("max-sessions must be at least 1");
  }
  if (max_sessions_per_tenant == 0) {
    throw std::invalid_argument("max-per-tenant must be at least 1");
  }
  if (!std::isfinite(max_budget) || max_budget <= 0.0) {
    throw std::invalid_argument("max-budget must be a positive finite number");
  }
  if (max_step_events == 0) {
    throw std::invalid_argument("max-step-events must be at least 1");
  }
  if (slice_events == 0) {
    throw std::invalid_argument("slice-events must be at least 1");
  }
  if (!std::isfinite(idle_timeout_seconds) || idle_timeout_seconds < 0.0) {
    throw std::invalid_argument(
        "idle-timeout must be a non-negative finite number");
  }
  if (max_line_bytes < 64) {
    throw std::invalid_argument("max-line-bytes must be at least 64");
  }
}

Session::Session(std::string id, std::string tenant, CrawlSpec spec,
                 const Graph& g, Clock::time_point now)
    : id_(std::move(id)),
      tenant_(std::move(tenant)),
      spec_(spec.normalized()),
      engine_(spec_.make_engine(g)),
      last_active_(now) {}

SessionRegistry::SessionRegistry(Graph graph, ServeLimits limits,
                                 std::string spool_dir)
    : graph_(std::move(graph)),
      limits_(limits),
      spool_dir_(std::move(spool_dir)) {
  limits_.validate();
  std::error_code ec;
  std::filesystem::create_directories(spool_dir_, ec);
  if (ec) {
    throw IoError("spool dir: cannot create " + spool_dir_ + ": " +
                  ec.message());
  }
}

std::string SessionRegistry::spool_path(const std::string& id) const {
  return spool_dir_ + "/" + id + ".ckpt";
}

Session& SessionRegistry::open(const std::string& id,
                               const std::string& tenant,
                               const CrawlSpec& spec, bool resume,
                               Session::Clock::time_point now) {
  if (sessions_.find(id) != sessions_.end()) {
    throw WireError("duplicate-session", "session \"" + id + "\" is open");
  }
  if (sessions_.size() >= limits_.max_sessions) {
    throw WireError("over-quota",
                    "server session limit reached (max-sessions=" +
                        std::to_string(limits_.max_sessions) + ")");
  }
  if (active_for(tenant) >= limits_.max_sessions_per_tenant) {
    throw WireError("over-quota",
                    "tenant \"" + tenant + "\" session limit reached "
                    "(max-per-tenant=" +
                        std::to_string(limits_.max_sessions_per_tenant) + ")");
  }
  if (spec.budget > limits_.max_budget) {
    throw WireError("over-quota",
                    "budget exceeds the per-session cap (max-budget=" +
                        std::to_string(limits_.max_budget) + ")");
  }

  auto session = std::make_unique<Session>(id, tenant, spec, graph_, now);
  if (resume) {
    const std::string path = spool_path(id);
    try {
      session->engine().load_checkpoint_file(path);
    } catch (const IoError& e) {
      throw WireError("bad-checkpoint", e.what());
    }
  }
  Session& ref = *session;
  sessions_.emplace(id, std::move(session));
  ++opened_;
  return ref;
}

Session* SessionRegistry::find(const std::string& id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Session& SessionRegistry::checked(const std::string& id) {
  Session* s = find(id);
  if (s == nullptr) {
    throw WireError("unknown-session", "no open session \"" + id + "\"");
  }
  if (s->busy()) {
    throw WireError("session-busy",
                    "session \"" + id + "\" has a step in flight");
  }
  return *s;
}

void SessionRegistry::close(const std::string& id) {
  (void)checked(id);  // unknown/busy checks
  sessions_.erase(id);
  ++closed_;
}

std::string SessionRegistry::checkpoint(Session& s,
                                        Session::Clock::time_point now,
                                        bool force) {
  const std::string path = spool_path(s.id());
  if (!force && now < s.spool_retry_at()) {
    ++spool_errors_;
    throw WireError(
        "io-error",
        "spool write for session \"" + s.id() +
            "\" is quarantined after " +
            std::to_string(s.spool_failures()) +
            " failed attempt(s); backing off");
  }
  try {
    // "serve.spool" covers every spool write: the checkpoint op, idle
    // eviction, and drain.
    FRONTIER_FAILPOINT("serve.spool");
    s.engine().save_checkpoint_file(path);
  } catch (const IoError& e) {
    ++spool_errors_;
    s.record_spool_failure(now);
    throw WireError("io-error",
                    "spool write failed for session \"" + s.id() +
                        "\" (attempt " +
                        std::to_string(s.spool_failures()) +
                        "): " + e.what());
  }
  s.clear_spool_failures();
  return path;
}

std::size_t SessionRegistry::evict_idle(Session::Clock::time_point now) {
  if (limits_.idle_timeout_seconds <= 0.0) return 0;
  std::size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& s = *it->second;
    const double idle =
        std::chrono::duration<double>(now - s.last_active()).count();
    if (!s.busy() && idle >= limits_.idle_timeout_seconds) {
      if (now < s.spool_retry_at()) {
        ++it;  // quarantined: hold the session until its backoff expires
        continue;
      }
      try {
        (void)checkpoint(s, now);
      } catch (const WireError&) {
        if (s.spool_failures() < kSpoolRetryLimit) {
          ++it;  // stays resident; next attempt after backoff
          continue;
        }
        // Retries exhausted (dead disk, full spool): drop the session
        // un-spooled rather than pin it forever. The client can re-open
        // fresh; the loss is bounded to this session's progress.
        ++spool_drops_;
        it = sessions_.erase(it);
        ++evicted;
        continue;
      }
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evictions_ += evicted;
  return evicted;
}

std::size_t SessionRegistry::drain_all(Session::Clock::time_point now) {
  std::size_t drained = 0;
  for (auto& [id, session] : sessions_) {
    (void)id;
    try {
      (void)checkpoint(*session, now, /*force=*/true);
      ++drained;
    } catch (const WireError&) {
      // Counted in spool_errors_; keep draining the others.
    }
  }
  return drained;
}

std::size_t SessionRegistry::active_for(const std::string& tenant) const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    (void)id;
    if (session->tenant() == tenant) ++n;
  }
  return n;
}

std::vector<const Session*> SessionRegistry::list() const {
  std::vector<const Session*> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    (void)id;
    out.push_back(session.get());
  }
  return out;
}

}  // namespace frontier::serve

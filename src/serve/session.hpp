// Sessions and admission control for the frontier_serve daemon.
//
// A Session owns one streaming crawl — cursor + sinks + event counter,
// wrapped in a StreamEngine — built from a CrawlSpec over the registry's
// shared graph. The graph is one read-only GraphStorage (typically
// mmap'd), so a thousand sessions cost a thousand cursor states, not a
// thousand graphs.
//
// The SessionRegistry is the daemon's source of truth: open/close with
// per-tenant admission control (ServeLimits), idle eviction to spool
// checkpoint files (an evicted session costs zero bytes of engine state
// and resumes bit-identically via {"op":"open",...,"resume":true}), and
// graceful drain (checkpoint everything) for SIGTERM. All of it is
// driven by caller-supplied steady_clock time points, so tests exercise
// eviction without sleeping.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "serve/protocol.hpp"
#include "stream/engine.hpp"
#include "stream/spec.hpp"

namespace frontier::serve {

/// Spool-write quarantine: after a failed spool write a session backs
/// off kSpoolBackoffBase << (failures-1) before the next attempt; after
/// kSpoolRetryLimit consecutive failures an *eviction* gives up and
/// drops the session rather than wedging the daemon on a dead disk.
/// Client-requested checkpoints inside the backoff window are answered
/// with a structured io-error without touching the disk.
inline constexpr std::uint32_t kSpoolRetryLimit = 5;
inline constexpr std::chrono::milliseconds kSpoolBackoffBase{200};

/// Admission-control and transport quotas. Zero means "unlimited" only
/// where documented; the CLI flags behind these reject zero outright so
/// a deployment states its limits explicitly.
struct ServeLimits {
  std::uint64_t max_sessions = 64;
  std::uint64_t max_sessions_per_tenant = 16;
  double max_budget = 1.0e9;  ///< per-session budget cap (queries)
  std::uint64_t max_step_events = std::uint64_t{1} << 20;  ///< per request
  std::uint64_t slice_events = std::uint64_t{1} << 14;  ///< scheduler slice
  double idle_timeout_seconds = 0.0;  ///< 0 = never evict
  std::uint64_t max_line_bytes = std::uint64_t{1} << 16;

  /// Throws std::invalid_argument on zero/negative/non-finite values
  /// (idle_timeout_seconds == 0 is the documented "never evict").
  void validate() const;
};

class Session {
 public:
  using Clock = std::chrono::steady_clock;

  Session(std::string id, std::string tenant, CrawlSpec spec, const Graph& g,
          Clock::time_point now);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
  [[nodiscard]] const CrawlSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] StreamEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const StreamEngine& engine() const noexcept {
    return *engine_;
  }

  [[nodiscard]] Clock::time_point last_active() const noexcept {
    return last_active_;
  }
  void touch(Clock::time_point now) noexcept { last_active_ = now; }

  /// A session is busy while a deferred step job is pending on it; busy
  /// sessions reject every other op and are never evicted.
  [[nodiscard]] bool busy() const noexcept { return busy_; }
  void set_busy(bool b) noexcept { busy_ = b; }

  /// Spool quarantine bookkeeping (see kSpoolRetryLimit above).
  [[nodiscard]] std::uint32_t spool_failures() const noexcept {
    return spool_failures_;
  }
  [[nodiscard]] Clock::time_point spool_retry_at() const noexcept {
    return spool_retry_at_;
  }
  void record_spool_failure(Clock::time_point now) noexcept {
    ++spool_failures_;
    const std::uint32_t shift = std::min(spool_failures_ - 1, 16u);
    spool_retry_at_ = now + kSpoolBackoffBase * (std::int64_t{1} << shift);
  }
  void clear_spool_failures() noexcept {
    spool_failures_ = 0;
    spool_retry_at_ = Clock::time_point{};
  }

 private:
  std::string id_;
  std::string tenant_;
  CrawlSpec spec_;  // normalized
  std::unique_ptr<StreamEngine> engine_;
  Clock::time_point last_active_;
  bool busy_ = false;
  std::uint32_t spool_failures_ = 0;
  Clock::time_point spool_retry_at_{};  // epoch = no quarantine
};

class SessionRegistry {
 public:
  /// `spool_dir` receives eviction/drain/checkpoint files
  /// (<spool>/<session>.ckpt); it is created if missing (IoError if that
  /// fails). The graph is stored by value — copies share storage.
  SessionRegistry(Graph graph, ServeLimits limits, std::string spool_dir);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const ServeLimits& limits() const noexcept { return limits_; }
  [[nodiscard]] const std::string& spool_dir() const noexcept {
    return spool_dir_;
  }
  [[nodiscard]] std::string spool_path(const std::string& id) const;

  /// Admission-checked open. Throws WireError: duplicate-session,
  /// over-quota (session count, tenant count, budget cap), bad-checkpoint
  /// (resume against a missing/mismatched spool file).
  Session& open(const std::string& id, const std::string& tenant,
                const CrawlSpec& spec, bool resume, Session::Clock::time_point now);

  /// nullptr when unknown.
  [[nodiscard]] Session* find(const std::string& id);

  /// Throws WireError unknown-session / session-busy.
  [[nodiscard]] Session& checked(const std::string& id);

  /// Removes the session (its spool checkpoint, if any, is left on disk).
  /// Throws WireError unknown-session / session-busy.
  void close(const std::string& id);

  /// Checkpoints to the session's spool path; returns that path. Throws
  /// WireError io-error on write failure or while the session's spool is
  /// quarantined (exponential backoff after earlier failures — see
  /// kSpoolRetryLimit). `force` attempts the write regardless of
  /// quarantine (drain uses it: the process is exiting, best effort
  /// beats backoff).
  std::string checkpoint(Session& s, Session::Clock::time_point now,
                         bool force = false);

  /// Checkpoints and destroys every non-busy session idle for longer
  /// than limits().idle_timeout_seconds. Returns the eviction count. A
  /// session whose spool write fails stays resident and backs off; after
  /// kSpoolRetryLimit consecutive failures it is dropped un-spooled
  /// (counted in spool_drops()) so a dead disk cannot pin sessions
  /// forever. Never throws for spool failures.
  std::size_t evict_idle(Session::Clock::time_point now);

  /// Checkpoints every session (graceful drain), skipping none for
  /// quarantine. Returns the number successfully spooled; failures are
  /// counted in spool_errors() and do not abort the drain.
  std::size_t drain_all(Session::Clock::time_point now);

  [[nodiscard]] std::size_t active() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::size_t active_for(const std::string& tenant) const;
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }
  [[nodiscard]] std::uint64_t opened() const noexcept { return opened_; }
  [[nodiscard]] std::uint64_t closed() const noexcept { return closed_; }
  /// Failed spool writes (including quarantine rejections).
  [[nodiscard]] std::uint64_t spool_errors() const noexcept {
    return spool_errors_;
  }
  /// Sessions dropped un-spooled after exhausting spool retries.
  [[nodiscard]] std::uint64_t spool_drops() const noexcept {
    return spool_drops_;
  }

  /// Session pointers in id order (stats rendering, tests).
  [[nodiscard]] std::vector<const Session*> list() const;

 private:
  Graph graph_;
  ServeLimits limits_;
  std::string spool_dir_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::uint64_t evictions_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t spool_errors_ = 0;
  std::uint64_t spool_drops_ = 0;
};

}  // namespace frontier::serve

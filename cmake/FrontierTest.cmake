# Test registration helper.
#
# frontier_add_test(<name>) builds tests/<name>.cpp into an executable
# linked against the frontier library and GoogleTest, and registers it
# with ctest under the same name. All 41 seed test files plus any new
# ones go through this one function so flags stay uniform.

find_package(GTest REQUIRED)

function(frontier_add_test name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name}
    PRIVATE frontier GTest::gtest GTest::gtest_main Threads::Threads)
  add_test(NAME ${name} COMMAND ${name})
  # A hung walker must fail fast, not stall the CI queue: the slowest test
  # binary finishes in under a second on one core, so 120 s is generous.
  set_tests_properties(${name} PROPERTIES TIMEOUT 120)
endfunction()
